"""Tests for the request-level queueing cross-validation substrate."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workloads.latency import LatencyModel
from repro.workloads.queueing import QueueingComponent, load_latency_curve
from repro.workloads.spec import ComponentSpec


@pytest.fixture(scope="module")
def curve():
    component = QueueingComponent(service_ms=5.0, service_sigma=0.3, workers=8)
    return component, load_latency_curve(
        component, [0.3, 0.6, 0.85, 0.95], duration_s=40.0, seed=1
    )


class TestQueueingComponent:
    def test_capacity(self):
        c = QueueingComponent(service_ms=10.0, service_sigma=0.3, workers=10)
        # E[S] = 10ms * exp(0.045) ~ 10.46ms -> ~956 QPS with 10 workers.
        assert c.capacity_qps == pytest.approx(956, rel=0.01)

    def test_light_load_sojourn_is_service_time(self):
        c = QueueingComponent(service_ms=5.0, service_sigma=0.3, workers=8)
        stats = c.simulate(0.1 * c.capacity_qps, 30.0, RandomStreams(2))
        # Nearly no queueing: sojourn ~ mean service time.
        assert stats.mean_wait_ms < 0.2
        assert stats.mean_sojourn_ms == pytest.approx(
            5.0 * 2.718281828 ** (0.3**2 / 2), rel=0.1
        )

    def test_sojourn_grows_convexly_with_load(self, curve):
        _, stats = curve
        means = [s.mean_sojourn_ms for s in stats]
        assert means == sorted(means)
        # Convexity: the 0.85->0.95 jump dwarfs the 0.3->0.6 one.
        assert (means[3] - means[2]) > 2 * (means[1] - means[0])

    def test_tail_blows_up_near_saturation(self, curve):
        _, stats = curve
        assert stats[-1].p99_sojourn_ms > 3 * stats[0].p99_sojourn_ms

    def test_variance_rises_toward_saturation(self, curve):
        _, stats = curve
        assert stats[-1].cov > stats[0].cov

    def test_completed_counts_scale_with_rate(self, curve):
        component, stats = curve
        assert stats[-1].completed > stats[0].completed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueueingComponent(service_ms=0.0)
        c = QueueingComponent(service_ms=5.0)
        with pytest.raises(ConfigurationError):
            c.simulate(-1.0, 10.0)
        with pytest.raises(ConfigurationError):
            load_latency_curve(c, [1.5])


class TestCrossValidation:
    def test_analytic_model_matches_queueing_shape(self, curve):
        """The analytic median(u) curve and the emergent queueing curve
        agree in shape: both monotone and convex in load."""
        _, stats = curve
        spec = ComponentSpec(
            name="x", base_ms=5.0, sigma0=0.3, lin_growth=0.5,
            sat_growth=0.8, cov_knee=0.6,
        )
        loads = [s.offered_load for s in stats]
        analytic = [LatencyModel.component_median_ms(spec, u) for u in loads]
        emergent = [s.mean_sojourn_ms for s in stats]
        # Same ordering at every pair of loads (rank correlation 1).
        analytic_ranks = sorted(range(len(loads)), key=analytic.__getitem__)
        emergent_ranks = sorted(range(len(loads)), key=emergent.__getitem__)
        assert analytic_ranks == emergent_ranks
        # Both convex: last-step growth dominates first-step growth.
        assert (analytic[-1] - analytic[-2]) > (analytic[1] - analytic[0])
        assert (emergent[-1] - emergent[-2]) > (emergent[1] - emergent[0])
