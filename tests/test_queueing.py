"""Tests for the request-level queueing cross-validation substrate."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workloads.latency import LatencyModel
from repro.workloads.queueing import QueueingComponent, load_latency_curve
from repro.workloads.spec import ComponentSpec


@pytest.fixture(scope="module")
def curve():
    component = QueueingComponent(service_ms=5.0, service_sigma=0.3, workers=8)
    return component, load_latency_curve(
        component, [0.3, 0.6, 0.85, 0.95], duration_s=40.0, seed=1
    )


class TestQueueingComponent:
    def test_capacity(self):
        c = QueueingComponent(service_ms=10.0, service_sigma=0.3, workers=10)
        # E[S] = 10ms * exp(0.045) ~ 10.46ms -> ~956 QPS with 10 workers.
        assert c.capacity_qps == pytest.approx(956, rel=0.01)

    def test_light_load_sojourn_is_service_time(self):
        c = QueueingComponent(service_ms=5.0, service_sigma=0.3, workers=8)
        stats = c.simulate(0.1 * c.capacity_qps, 30.0, RandomStreams(2))
        # Nearly no queueing: sojourn ~ mean service time.
        assert stats.mean_wait_ms < 0.2
        assert stats.mean_sojourn_ms == pytest.approx(
            5.0 * 2.718281828 ** (0.3**2 / 2), rel=0.1
        )

    def test_sojourn_grows_convexly_with_load(self, curve):
        _, stats = curve
        means = [s.mean_sojourn_ms for s in stats]
        assert means == sorted(means)
        # Convexity: the 0.85->0.95 jump dwarfs the 0.3->0.6 one.
        assert (means[3] - means[2]) > 2 * (means[1] - means[0])

    def test_tail_blows_up_near_saturation(self, curve):
        _, stats = curve
        assert stats[-1].p99_sojourn_ms > 3 * stats[0].p99_sojourn_ms

    def test_variance_rises_toward_saturation(self, curve):
        _, stats = curve
        assert stats[-1].cov > stats[0].cov

    def test_completed_counts_scale_with_rate(self, curve):
        component, stats = curve
        assert stats[-1].completed > stats[0].completed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueueingComponent(service_ms=0.0)
        c = QueueingComponent(service_ms=5.0)
        with pytest.raises(ConfigurationError):
            c.simulate(-1.0, 10.0)
        with pytest.raises(ConfigurationError):
            load_latency_curve(c, [1.5])


class TestCrossValidation:
    def test_analytic_model_matches_queueing_shape(self, curve):
        """The analytic median(u) curve and the emergent queueing curve
        agree in shape: both monotone and convex in load."""
        _, stats = curve
        spec = ComponentSpec(
            name="x", base_ms=5.0, sigma0=0.3, lin_growth=0.5,
            sat_growth=0.8, cov_knee=0.6,
        )
        loads = [s.offered_load for s in stats]
        analytic = [LatencyModel.component_median_ms(spec, u) for u in loads]
        emergent = [s.mean_sojourn_ms for s in stats]
        # Same ordering at every pair of loads (rank correlation 1).
        analytic_ranks = sorted(range(len(loads)), key=analytic.__getitem__)
        emergent_ranks = sorted(range(len(loads)), key=emergent.__getitem__)
        assert analytic_ranks == emergent_ranks
        # Both convex: last-step growth dominates first-step growth.
        assert (analytic[-1] - analytic[-2]) > (analytic[1] - analytic[0])
        assert (emergent[-1] - emergent[-2]) > (emergent[1] - emergent[0])


class TestScalarReferenceIdentity:
    """The batched simulate must match the historical scalar loop exactly."""

    @staticmethod
    def _scalar_simulate(component, arrival_qps, duration_s, streams, warmup_s=2.0):
        # Verbatim port of the historical one-draw-per-event loop.
        import math

        import numpy as np

        from repro.sim.engine import Engine
        from repro.workloads.queueing import QueueingStats

        arrival_rng = streams.stream("queue:arrivals")
        service_rng = streams.stream("queue:service")
        engine = Engine()
        busy = [0]
        queue: list = []
        sojourns: list = []
        waits: list = []

        def start_service(t, arrived, service_s):
            busy[0] += 1

            def finish(t_done):
                busy[0] -= 1
                if arrived >= warmup_s:
                    sojourns.append((t_done - arrived) * 1000.0)
                    waits.append((t_done - arrived - service_s) * 1000.0)
                if queue:
                    q_arrived, q_service = queue.pop(0)
                    start_service(t_done, q_arrived, q_service)

            engine.after(service_s, finish)

        def arrive(t):
            service_s = float(
                service_rng.lognormal(
                    math.log(component.service_ms / 1000.0),
                    component.service_sigma,
                )
            )
            if busy[0] < component.workers:
                start_service(t, t, service_s)
            else:
                queue.append((t, service_s))
            gap = float(arrival_rng.exponential(1.0 / arrival_qps))
            if t + gap <= duration_s:
                engine.at(t + gap, arrive)

        engine.at(float(arrival_rng.exponential(1.0 / arrival_qps)), arrive)
        fired = engine.run(until=duration_s + 60.0)
        arr = np.asarray(sojourns)
        mean = float(arr.mean())
        return QueueingStats(
            offered_load=arrival_qps / component.capacity_qps,
            completed=len(sojourns),
            mean_sojourn_ms=mean,
            p99_sojourn_ms=float(np.percentile(arr, 99.0)),
            cov=float(arr.std(ddof=1) / mean) if len(arr) > 1 else 0.0,
            mean_wait_ms=float(np.mean(waits)),
            events=fired,
        )

    @pytest.mark.parametrize("load,workers", [(0.3, 4), (0.9, 2)])
    def test_stats_bit_identical(self, load, workers):
        component = QueueingComponent(
            service_ms=5.0, service_sigma=0.4, workers=workers
        )
        qps = load * component.capacity_qps
        ref_streams = RandomStreams(13)
        new_streams = RandomStreams(13)
        reference = self._scalar_simulate(component, qps, 20.0, ref_streams)
        batched = component.simulate(qps, 20.0, new_streams)
        assert batched == reference  # every field, bit for bit

    def test_rng_stream_consumption_identical(self):
        # After the run, both implementations must leave the generators
        # in the same state — proof that the batched path consumed
        # exactly the draws the scalar loop consumed (including the
        # final overshooting inter-arrival gap).
        component = QueueingComponent(service_ms=5.0, workers=4)
        qps = 0.7 * component.capacity_qps
        ref_streams = RandomStreams(5)
        new_streams = RandomStreams(5)
        self._scalar_simulate(component, qps, 15.0, ref_streams)
        component.simulate(qps, 15.0, new_streams)
        for name in ("queue:arrivals", "queue:service"):
            ref_state = ref_streams.stream(name).bit_generator.state
            new_state = new_streams.stream(name).bit_generator.state
            assert ref_state == new_state

    def test_chunk_boundary_identical(self):
        # Enough arrivals to cross several _ARRIVAL_CHUNK boundaries.
        component = QueueingComponent(service_ms=2.0, workers=8)
        qps = 0.5 * component.capacity_qps
        reference = self._scalar_simulate(
            component, qps, 10.0, RandomStreams(3)
        )
        assert reference.completed > QueueingComponent._ARRIVAL_CHUNK
        assert component.simulate(qps, 10.0, RandomStreams(3)) == reference
