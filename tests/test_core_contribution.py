"""Tests for the contribution analyzer (Equations 1-5)."""

from __future__ import annotations

import math

import pytest

from repro.core.contribution import (
    ContributionAnalyzer,
    enumerate_paths,
    pearson,
)
from repro.errors import ProfilingError
from repro.workloads.spec import CallNode, chain, fanout

from conftest import make_fanout_service, make_tiny_service


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_degenerate_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ProfilingError):
            pearson([1, 2], [1, 2, 3])

    def test_needs_two_points(self):
        with pytest.raises(ProfilingError):
            pearson([1], [1])


class TestEnumeratePaths:
    def test_chain_single_path(self):
        assert enumerate_paths(chain("a", "b", "c")) == [("a", "b", "c")]

    def test_fanout_forks(self):
        paths = enumerate_paths(fanout("m", chain("x"), chain("y", "z")))
        assert sorted(paths) == [("m", "x"), ("m", "y", "z")]

    def test_sequential_children_share_path(self):
        root = CallNode("m", children=(CallNode("x"), CallNode("y")), parallel=False)
        assert enumerate_paths(root) == [("m", "x", "y")]

    def test_nested_mixed(self):
        root = CallNode(
            "m",
            children=(
                CallNode("seq1"),
                CallNode("fan", children=(CallNode("a"), CallNode("b")), parallel=True),
            ),
            parallel=False,
        )
        paths = enumerate_paths(root)
        assert sorted(paths) == [("m", "seq1", "fan", "a"), ("m", "seq1", "fan", "b")]


class TestAnalyzer:
    def _sweep(self, front, back):
        """Build a 2-pod sweep with given per-load means."""
        tails = [2.0 * (f + b) for f, b in zip(front, back)]
        return {"front": front, "back": back}, tails

    def test_eq1_mean_weight(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        sojourns, tails = self._sweep([1.0, 1.0, 1.0], [3.0, 3.0, 3.0])
        # Degenerate (flat) sweeps: P_i still well-defined.
        result = analyzer.analyze(sojourns, [10.0, 11.0, 12.0])
        assert result.contributions["front"].mean_weight == pytest.approx(0.25)
        assert result.contributions["back"].mean_weight == pytest.approx(0.75)

    def test_eq2_correlation_sign(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        sojourns = {"front": [1.0, 1.0, 1.0], "back": [1.0, 2.0, 4.0]}
        tails = [10.0, 20.0, 40.0]
        result = analyzer.analyze(sojourns, tails)
        assert result.contributions["back"].correlation == pytest.approx(1.0)
        assert result.contributions["front"].correlation == 0.0

    def test_eq3_variation(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        series = [1.0, 2.0, 3.0]
        sojourns = {"front": series, "back": [2.0, 2.0, 2.0]}
        result = analyzer.analyze(sojourns, [5.0, 6.0, 7.0])
        m = 3
        mean = 2.0
        expected = math.sqrt(sum((x - mean) ** 2 for x in series) / (m * (m - 1))) / mean
        assert result.contributions["front"].variation == pytest.approx(expected)
        assert result.contributions["back"].variation == 0.0

    def test_growing_noisy_pod_dominates(self, tiny_service):
        """A pod with high mean, growth and correlation out-contributes a
        flat stable one — the paper's three principles combined."""
        analyzer = ContributionAnalyzer(tiny_service)
        sojourns = {
            "front": [1.0, 1.05, 1.1, 1.05, 1.0],
            "back": [5.0, 8.0, 12.0, 20.0, 35.0],
        }
        tails = [12.0, 18.0, 26.0, 45.0, 75.0]
        result = analyzer.analyze(sojourns, tails)
        assert result.contribution("back") > 10 * result.contribution("front")

    def test_normalized_sums_to_one(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        sojourns = {"front": [1.0, 2.0, 3.0], "back": [2.0, 4.0, 9.0]}
        result = analyzer.analyze(sojourns, [6.0, 12.0, 25.0])
        assert sum(result.normalized().values()) == pytest.approx(1.0)

    def test_ranked_descending(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        sojourns = {"front": [1.0, 2.0, 3.0], "back": [2.0, 4.0, 9.0]}
        result = analyzer.analyze(sojourns, [6.0, 12.0, 25.0])
        ranked = result.ranked()
        assert ranked[0].contribution >= ranked[-1].contribution

    def test_eq5_off_critical_path_scaled(self, fanout_service):
        """A short parallel branch gets alpha < 1 (Eq. 5)."""
        analyzer = ContributionAnalyzer(fanout_service)
        sojourns = {
            "root": [2.0, 2.5, 3.0],
            "long": [10.0, 14.0, 20.0],
            "short": [1.0, 1.4, 2.0],
        }
        tails = [15.0, 20.0, 28.0]
        result = analyzer.analyze(sojourns, tails)
        assert result.contributions["long"].alpha == 1.0
        assert result.contributions["root"].alpha == 1.0
        short_alpha = result.contributions["short"].alpha
        # alpha = (root + short) / (root + long)
        assert short_alpha == pytest.approx((2.5 + 1.4 + 0.1) / (2.5 + 14.0 + 0.1), abs=0.05)
        assert result.contributions["short"].on_critical_path is False

    def test_missing_pod_rejected(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        with pytest.raises(ProfilingError):
            analyzer.analyze({"front": [1.0, 2.0]}, [3.0, 4.0])

    def test_length_mismatch_rejected(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        with pytest.raises(ProfilingError):
            analyzer.analyze(
                {"front": [1.0, 2.0], "back": [1.0, 2.0, 3.0]}, [3.0, 4.0]
            )

    def test_single_load_rejected(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        with pytest.raises(ProfilingError):
            analyzer.analyze({"front": [1.0], "back": [1.0]}, [2.0])

    def test_negative_correlation_clamped_to_zero_contribution(self, tiny_service):
        analyzer = ContributionAnalyzer(tiny_service)
        sojourns = {"front": [3.0, 2.0, 1.0], "back": [1.0, 2.0, 3.0]}
        tails = [4.0, 5.0, 6.0]
        result = analyzer.analyze(sojourns, tails)
        assert result.contribution("front") == 0.0
