"""Tests for the sharded fleet experiment (``repro.experiments.fleet``).

The load-bearing contract mirrors the kernel-identity tests one level
up: a fleet run is bit-identical to running every instance's experiment
sequentially under the scalar reference kernel (same fingerprints, same
final RNG states — both folded into per-instance digests), and the
shard count never changes results. The zone governor is the only
cross-instance coupling, and it is off by default, which is the
configuration the identity pin covers.
"""

from __future__ import annotations

import dataclasses
import multiprocessing

import pytest

from repro.core.actions import BeAction
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.fleet import (
    FleetConfig,
    FleetExperiment,
    FleetInstanceSpec,
    PodPolicy,
    alibaba_fleet,
    fleet_identity_probe,
    heracles_fleet_policies,
    make_growth_clamp,
    policies_from_controllers,
)
from repro.faults.spec import FaultSchedule
from repro.loadgen.patterns import ConstantLoad
from repro.workloads.catalog import lc_service_spec


def small_fleet(
    n_instances: int = 4,
    duration_s: float = 40.0,
    seed: int = 3,
    **config_kwargs,
) -> FleetExperiment:
    config_kwargs.setdefault("workers", 1)
    config_kwargs.setdefault("zone_size", 2)
    config = FleetConfig(duration_s=duration_s, **config_kwargs)
    return alibaba_fleet(
        2 * n_instances,
        policy="heracles",
        duration_s=duration_s,
        seed=seed,
        config=config,
    )


def violating_fleet(
    duration_s: float = 80.0, **config_kwargs
) -> FleetExperiment:
    """A fleet whose lenient controllers let the SLA be violated."""
    service = lc_service_spec("Redis")
    policies = tuple(
        sorted(
            (pod, PodPolicy(loadlimit=1.0, slacklimit=0.02))
            for pod in service.servpod_names
        )
    )
    specs = [
        FleetInstanceSpec(
            service="Redis",
            policies=policies,
            be_jobs=("stream-llc", "stream-dram"),
            pattern=ConstantLoad(0.95),
            seed=40 + k,
        )
        for k in range(4)
    ]
    config_kwargs.setdefault("workers", 1)
    config_kwargs.setdefault("zone_size", 2)
    return FleetExperiment(
        specs, FleetConfig(duration_s=duration_s, **config_kwargs)
    )


class TestFleetIdentity:
    """Fleet runs must match the sequential scalar reference bit for bit."""

    def test_fleet_matches_scalar_reference(self):
        fleet = small_fleet()
        assert fleet.run().digest == fleet.run_reference().digest

    def test_identity_with_faulted_instance(self):
        fleet = small_fleet()
        fleet.instances[1] = dataclasses.replace(
            fleet.instances[1],
            faults=FaultSchedule.generate(7, 40.0, faults_per_minute=4.0),
        )
        assert fleet.run().digest == fleet.run_reference().digest

    @pytest.mark.parametrize("shards", [2, 4])
    def test_shard_count_invariance(self, shards):
        baseline = small_fleet(shards=1).run()
        sharded = small_fleet(shards=shards).run()
        assert sharded.digest == baseline.digest
        assert [s.index for s in sharded.instances] == list(range(4))

    def test_fork_subprocess_identity(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                fleet_identity_probe,
                ("fleet",),
                {"n_instances": 3, "duration_s": 40.0, "seed": 5},
            )
        parent = fleet_identity_probe(
            "reference", n_instances=3, duration_s=40.0, seed=5
        )
        assert parent == child

    @pytest.mark.slow
    def test_spawn_subprocess_identity(self):
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                fleet_identity_probe,
                ("fleet",),
                {"n_instances": 3, "duration_s": 40.0, "seed": 5,
                 "with_faults": True},
            )
        parent = fleet_identity_probe(
            "reference", n_instances=3, duration_s=40.0, seed=5,
            with_faults=True,
        )
        assert parent == child

    def test_probe_rejects_unknown_mode(self):
        with pytest.raises(ExperimentError):
            fleet_identity_probe("turbo")


class TestShardPlan:
    def test_plan_is_zone_aligned_and_complete(self):
        fleet = small_fleet(n_instances=7, shards=3, zone_size=2)
        plan = fleet.shard_plan()
        covered = []
        for start, count in plan:
            assert start % 2 == 0, "shard must start at a zone boundary"
            covered.extend(range(start, start + count))
        assert covered == list(range(7))

    def test_more_shards_than_zones_collapses(self):
        fleet = small_fleet(n_instances=2, shards=16, zone_size=2)
        assert len(fleet.shard_plan()) == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(shards=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(zone_size=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(epoch_ticks=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(violation_threshold=1.5)
        with pytest.raises(ConfigurationError):
            FleetExperiment([], FleetConfig())


class TestZoneGovernor:
    def test_growth_clamp_only_demotes_allow(self):
        seen = {}
        clamp = make_growth_clamp(seen)
        assert clamp("pod", BeAction.ALLOW_BE_GROWTH) is BeAction.DISALLOW_BE_GROWTH
        for action in (
            BeAction.STOP_BE,
            BeAction.SUSPEND_BE,
            BeAction.CUT_BE,
            BeAction.DISALLOW_BE_GROWTH,
        ):
            assert clamp("pod", action) is action
        assert seen == {"pod": 1}

    def test_governor_records_epochs_and_clamps(self):
        fleet = violating_fleet(epoch_ticks=5, violation_threshold=0.1)
        result = fleet.run()
        assert result.zone_records, "governor must emit epoch records"
        zones = {r.zone for r in result.zone_records}
        assert zones == {0, 1}
        assert any(r.clamped for r in result.zone_records)

    def test_governor_changes_results_only_when_clamping(self):
        off = violating_fleet().run()
        on = violating_fleet(epoch_ticks=5, violation_threshold=0.1).run()
        assert on.digest != off.digest
        # An unreachable threshold observes but never clamps: identical.
        watch = violating_fleet(epoch_ticks=5, violation_threshold=1.0).run()
        assert watch.digest == off.digest
        assert watch.zone_records and not any(r.clamped for r in watch.zone_records)

    def test_governor_survives_sharding(self):
        one = violating_fleet(epoch_ticks=5, violation_threshold=0.1, shards=1)
        two = violating_fleet(epoch_ticks=5, violation_threshold=0.1, shards=2)
        assert one.run().digest == two.run().digest

    def test_reference_requires_governor_off(self):
        fleet = violating_fleet(epoch_ticks=5, violation_threshold=0.1)
        with pytest.raises(ExperimentError):
            fleet.run_reference()


class TestPolicies:
    def test_pod_policy_builds_controller(self):
        policy = PodPolicy(loadlimit=0.9, slacklimit=0.2,
                           suspend_on_load_at_or_above=True)
        controller = policy.build("master", sla_ms=30.0)
        assert controller.thresholds.loadlimit == 0.9
        assert controller.thresholds.slacklimit == 0.2
        assert controller.suspend_on_load_at_or_above is True
        assert controller.sla_ms == 30.0

    def test_policies_roundtrip_through_controllers(self):
        from repro.baselines.heracles import heracles_controllers

        service = lc_service_spec("Redis")
        policies = policies_from_controllers(heracles_controllers(service))
        assert policies == heracles_fleet_policies("Redis")

    def test_missing_pod_policy_rejected(self):
        spec = FleetInstanceSpec(
            service="Redis",
            policies=(("master", PodPolicy(0.85, 0.1)),),
            be_jobs=("stream-llc",),
            pattern=ConstantLoad(0.5),
        )
        with pytest.raises(ExperimentError):
            FleetExperiment([spec], FleetConfig(duration_s=20.0, workers=1)).run()


class TestAlibabaFleet:
    def test_machine_floor_and_determinism(self):
        fleet = alibaba_fleet(10, policy="heracles", duration_s=60.0, seed=2)
        total = sum(
            len(lc_service_spec(s.service).servpod_names)
            for s in fleet.instances
        )
        assert total >= 10
        again = alibaba_fleet(10, policy="heracles", duration_s=60.0, seed=2)
        assert [s.seed for s in again.instances] == [
            s.seed for s in fleet.instances
        ]
        assert [s.be_jobs for s in again.instances] == [
            s.be_jobs for s in fleet.instances
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            alibaba_fleet(0)
        with pytest.raises(ConfigurationError):
            alibaba_fleet(4, policy="borg")
        with pytest.raises(ConfigurationError):
            alibaba_fleet(4, duration_s=60.0, config=FleetConfig(duration_s=30.0))

    def test_result_aggregation_is_machine_weighted(self):
        result = small_fleet(n_instances=2).run()
        assert result.n_instances == 2
        assert result.n_machines == 4
        manual = sum(
            s.be_throughput * s.machines for s in result.instances
        ) / result.n_machines
        assert result.be_throughput == pytest.approx(manual)
        assert result.events_fired == sum(
            s.events_fired for s in result.instances
        )


class TestAlibabaLoadMode:
    """``load="alibaba"`` replays the bundled trace per instance."""

    def _fleet(self, load, seed=3, services=("Redis",), shards=1):
        config = FleetConfig(
            duration_s=40.0, shards=shards, workers=1, zone_size=2
        )
        return alibaba_fleet(
            8,
            policy="heracles",
            duration_s=40.0,
            seed=seed,
            services=services,
            config=config,
            load=load,
        )

    def test_patterns_are_replayed_trace_days(self):
        from repro.loadgen.patterns import FlashCrowdLoad, ReplayLoad

        fleet = self._fleet("alibaba")
        for spec in fleet.instances:
            pattern = spec.pattern
            if isinstance(pattern, FlashCrowdLoad):
                pattern = pattern.base
            assert isinstance(pattern, ReplayLoad)

    def test_seeded_digest_matches_scalar_reference(self):
        # The replayed fleet rides the same identity contract as the
        # diurnal one: bit-identical to the sequential scalar runs.
        assert (
            self._fleet("alibaba").run().digest
            == self._fleet("alibaba").run_reference().digest
        )

    def test_seeded_digest_is_reproducible(self):
        assert (
            self._fleet("alibaba").run().digest
            == self._fleet("alibaba").run().digest
        )

    def test_mode_does_not_perturb_jitter_stream(self):
        # Switching load modes must not reshuffle seeds, BE mixes, or
        # flash-crowd membership (the jitter PRNG draws identically).
        replayed = self._fleet("alibaba")
        diurnal = self._fleet("diurnal")
        assert [s.seed for s in replayed.instances] == [
            s.seed for s in diurnal.instances
        ]
        assert [s.be_jobs for s in replayed.instances] == [
            s.be_jobs for s in diurnal.instances
        ]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            alibaba_fleet(4, load="clarknet")


class TestHeterogeneousServices:
    """Mixed service catalogs across one fleet's instances."""

    def _mixed(self, shards, seed=5):
        config = FleetConfig(
            duration_s=40.0, shards=shards, workers=1, zone_size=2
        )
        return alibaba_fleet(
            10,
            policy="heracles",
            duration_s=40.0,
            seed=seed,
            services=("Redis", "E-commerce"),
            config=config,
        )

    def test_services_cycle_across_instances(self):
        fleet = self._mixed(shards=1)
        names = [s.service for s in fleet.instances]
        assert set(names) == {"Redis", "E-commerce"}
        assert names == [
            ("Redis", "E-commerce")[k % 2] for k in range(len(names))
        ]

    @pytest.mark.parametrize("shards", [2, 3])
    def test_mixed_fleet_is_shard_invariant(self, shards):
        assert (
            self._mixed(shards=1).run().digest
            == self._mixed(shards=shards).run().digest
        )

    def test_mixed_fleet_matches_scalar_reference(self):
        assert (
            self._mixed(shards=2).run().digest
            == self._mixed(shards=1).run_reference().digest
        )

    def test_service_mix_is_a_zone_key_coordinate(self):
        from repro.experiments.fleet import zone_cache_key

        config = FleetConfig(duration_s=40.0, zone_size=2)
        redis_only = alibaba_fleet(
            4, policy="heracles", duration_s=40.0, config=config
        )
        mixed = alibaba_fleet(
            4,
            policy="heracles",
            duration_s=40.0,
            services=("Redis", "E-commerce"),
            config=config,
        )
        assert zone_cache_key(
            redis_only.instances[:2], config
        ) != zone_cache_key(mixed.instances[:2], config)
