"""Tests for hierarchical failure domains and correlated fault storms.

The contracts under test:

- :class:`FleetTopology` validates its maps (contiguous non-decreasing
  blocks starting at 0) and answers zone/domain queries consistently;
- :meth:`FleetTopology.generate` is a pure function of its arguments —
  same seed, byte-identical hierarchy; different seed, different racks;
- :class:`DomainEvent` validates like :class:`FaultSpec`;
- :meth:`CorrelatedFaultSchedule.generate` is seed-deterministic, sorts
  events by time, and rejects events naming out-of-range domains;
- :meth:`CorrelatedFaultSchedule.per_instance_schedules` is a pure
  expansion: every instance inside a blast radius gets exactly its
  events' machine faults, every instance outside is absent;
- :func:`merge_schedules` overlays storm faults on existing schedules.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import (
    ALL_TARGETS,
    DEFAULT_DOMAIN_KINDS,
    DOMAIN_FAULT_KINDS,
    DOMAIN_LEVELS,
    CorrelatedFaultSchedule,
    DomainEvent,
    DomainKind,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    FleetTopology,
)


def flat_topology(
    n_instances: int = 16, zone_size: int = 2
) -> FleetTopology:
    """2 zones per rack, 2 racks per AZ, 2 AZs per region."""
    n_zones = (n_instances + zone_size - 1) // zone_size
    rack_of_zone = tuple(z // 2 for z in range(n_zones))
    n_racks = rack_of_zone[-1] + 1
    az_of_rack = tuple(r // 2 for r in range(n_racks))
    n_azs = az_of_rack[-1] + 1
    region_of_az = tuple(a // 2 for a in range(n_azs))
    return FleetTopology(
        n_instances=n_instances,
        zone_size=zone_size,
        rack_of_zone=rack_of_zone,
        az_of_rack=az_of_rack,
        region_of_az=region_of_az,
    )


class TestFleetTopologyValidation:
    def test_flat_topology_shape(self):
        topo = flat_topology(16, 2)
        assert (topo.n_zones, topo.n_racks, topo.n_azs, topo.n_regions) == (
            8, 4, 2, 1,
        )

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(FaultError, match="n_instances"):
            FleetTopology(0, 2, (0,), (0,), (0,))
        with pytest.raises(FaultError, match="zone_size"):
            FleetTopology(4, 0, (0,), (0,), (0,))

    def test_rejects_wrong_zone_count(self):
        with pytest.raises(FaultError, match="form 2"):
            FleetTopology(4, 2, (0,), (0,), (0,))

    def test_rejects_noncontiguous_rack_ids(self):
        with pytest.raises(FaultError, match="contiguous"):
            FleetTopology(4, 2, (0, 2), (0, 0, 0), (0,))

    def test_rejects_decreasing_rack_ids(self):
        with pytest.raises(FaultError, match="contiguous"):
            FleetTopology(6, 2, (0, 1, 0), (0, 0), (0,))

    def test_rejects_rack_ids_not_starting_at_zero(self):
        with pytest.raises(FaultError, match="start at 0"):
            FleetTopology(4, 2, (1, 1), (0,), (0,))

    def test_rejects_mismatched_az_map(self):
        with pytest.raises(FaultError, match="az_of_rack"):
            FleetTopology(4, 2, (0, 1), (0,), (0,))

    def test_rejects_mismatched_region_map(self):
        with pytest.raises(FaultError, match="region_of_az"):
            FleetTopology(4, 2, (0, 1), (0, 1), (0,))

    def test_ragged_last_zone(self):
        # 5 instances at zone_size 2 -> 3 zones, last zone short.
        topo = FleetTopology(5, 2, (0, 0, 1), (0, 0), (0,))
        assert topo.instances_of_zone(2) == (4,)


class TestFleetTopologyQueries:
    def test_zone_of_instance_round_trips(self):
        topo = flat_topology(16, 2)
        for zone in range(topo.n_zones):
            for index in topo.instances_of_zone(zone):
                assert topo.zone_of_instance(index) == zone

    def test_zone_queries_reject_out_of_range(self):
        topo = flat_topology(16, 2)
        with pytest.raises(FaultError, match="instance"):
            topo.zone_of_instance(16)
        with pytest.raises(FaultError, match="zone"):
            topo.instances_of_zone(8)
        with pytest.raises(FaultError, match="rack"):
            topo.zones_of_rack(4)
        with pytest.raises(FaultError, match="AZ"):
            topo.zones_of_az(2)
        with pytest.raises(FaultError, match="region"):
            topo.zones_of_region(1)

    def test_domains_are_consecutive_zone_runs(self):
        topo = flat_topology(16, 2)
        for level, count in (
            ("rack", topo.n_racks),
            ("az", topo.n_azs),
            ("region", topo.n_regions),
        ):
            for domain in range(count):
                zones = topo.zones_of_domain(level, domain)
                assert zones == tuple(range(zones[0], zones[-1] + 1))

    def test_levels_nest(self):
        topo = flat_topology(16, 2)
        az_zones = set()
        for rack, az in enumerate(topo.az_of_rack):
            if az == 0:
                az_zones.update(topo.zones_of_rack(rack))
        assert tuple(sorted(az_zones)) == topo.zones_of_az(0)
        region_zones = set()
        for az in range(topo.n_azs):
            region_zones.update(topo.zones_of_az(az))
        assert tuple(sorted(region_zones)) == topo.zones_of_region(0)

    def test_unknown_domain_level_raises(self):
        with pytest.raises(FaultError, match="level"):
            flat_topology().zones_of_domain("pod", 0)

    def test_describe_mentions_every_level(self):
        text = flat_topology(16, 2).describe()
        for token in ("region", "AZ", "rack", "zone", "instance"):
            assert token in text


class TestFleetTopologyGenerate:
    def test_same_seed_identical(self):
        a = FleetTopology.generate(3, n_instances=64, zone_size=4)
        b = FleetTopology.generate(3, n_instances=64, zone_size=4)
        assert a == b

    def test_different_seeds_differ(self):
        topos = {
            FleetTopology.generate(seed, n_instances=256, zone_size=4)
            for seed in range(8)
        }
        assert len(topos) > 1

    def test_generated_topology_validates(self):
        for seed in range(10):
            topo = FleetTopology.generate(seed, n_instances=100, zone_size=4)
            assert topo.n_zones == 25
            assert topo.n_racks >= 1
            # Every zone accounted for exactly once across racks.
            assert sorted(
                z for r in range(topo.n_racks) for z in topo.zones_of_rack(r)
            ) == list(range(topo.n_zones))

    def test_width_bounds_respected(self):
        topo = FleetTopology.generate(
            5,
            n_instances=400,
            zone_size=4,
            min_zones_per_rack=2,
            max_zones_per_rack=2,
            min_racks_per_az=3,
            max_racks_per_az=3,
        )
        # Fixed widths: every rack exactly 2 zones, every full AZ 3 racks.
        for rack in range(topo.n_racks - 1):
            assert len(topo.zones_of_rack(rack)) == 2
        for az in range(topo.n_azs - 1):
            assert sum(1 for r in topo.az_of_rack if r == az) == 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(FaultError, match="n_instances"):
            FleetTopology.generate(0, n_instances=0)
        with pytest.raises(FaultError, match="zones-per-rack"):
            FleetTopology.generate(0, n_instances=8, min_zones_per_rack=3,
                                   max_zones_per_rack=2)
        with pytest.raises(FaultError, match="racks-per-AZ"):
            FleetTopology.generate(0, n_instances=8, min_racks_per_az=0)
        with pytest.raises(FaultError, match="azs_per_region"):
            FleetTopology.generate(0, n_instances=8, azs_per_region=0)

    def test_single_instance_fleet(self):
        topo = FleetTopology.generate(0, n_instances=1, zone_size=4)
        assert (topo.n_zones, topo.n_racks) == (1, 1)
        assert topo.zone_of_instance(0) == 0


class TestDomainEvent:
    def test_kind_maps_pin_fault_expansion(self):
        assert DOMAIN_FAULT_KINDS[DomainKind.RACK_POWER] is FaultKind.CORE_OFFLINE
        assert DOMAIN_FAULT_KINDS[DomainKind.AZ_COOLING] is FaultKind.DVFS_CAP
        assert DOMAIN_FAULT_KINDS[DomainKind.TOR_DEGRADE] is FaultKind.NIC_DEGRADE
        assert DOMAIN_LEVELS[DomainKind.AZ_COOLING] == "az"
        assert DOMAIN_LEVELS[DomainKind.RACK_POWER] == "rack"
        assert set(DEFAULT_DOMAIN_KINDS) == set(DomainKind)

    def test_properties_follow_kind(self):
        event = DomainEvent(DomainKind.AZ_COOLING, 1, at_s=10.0,
                            duration_s=30.0, magnitude=0.5)
        assert event.level == "az"
        assert event.fault_kind is FaultKind.DVFS_CAP
        assert event.end_s == 40.0

    def test_validation_mirrors_fault_spec(self):
        with pytest.raises(FaultError, match="DomainKind"):
            DomainEvent("rack_power", 0)
        with pytest.raises(FaultError, match="domain"):
            DomainEvent(DomainKind.RACK_POWER, -1)
        with pytest.raises(FaultError, match="start"):
            DomainEvent(DomainKind.RACK_POWER, 0, at_s=-1.0)
        with pytest.raises(FaultError, match="duration"):
            DomainEvent(DomainKind.RACK_POWER, 0, duration_s=0.0)
        with pytest.raises(FaultError, match="magnitude"):
            DomainEvent(DomainKind.RACK_POWER, 0, magnitude=0.0)
        with pytest.raises(FaultError, match="magnitude"):
            DomainEvent(DomainKind.RACK_POWER, 0, magnitude=1.5)


class TestCorrelatedFaultSchedule:
    def test_same_seed_identical_schedule(self):
        topo = FleetTopology.generate(1, n_instances=64, zone_size=4)
        a = CorrelatedFaultSchedule.generate(9, topo, 300.0,
                                             events_per_minute=1.0)
        b = CorrelatedFaultSchedule.generate(9, topo, 300.0,
                                             events_per_minute=1.0)
        assert a == b
        assert len(a) == 5

    def test_different_seeds_differ(self):
        topo = FleetTopology.generate(1, n_instances=64, zone_size=4)
        schedules = {
            CorrelatedFaultSchedule.generate(seed, topo, 300.0,
                                             events_per_minute=1.0).events
            for seed in range(6)
        }
        assert len(schedules) == 6

    def test_events_time_sorted_and_clipped(self):
        topo = FleetTopology.generate(1, n_instances=64, zone_size=4)
        storm = CorrelatedFaultSchedule.generate(2, topo, 120.0,
                                                 events_per_minute=4.0)
        starts = [e.at_s for e in storm]
        assert starts == sorted(starts)
        for event in storm:
            assert 0.0 <= event.at_s <= 120.0
            assert event.duration_s >= 20.0

    def test_kind_restriction(self):
        topo = FleetTopology.generate(1, n_instances=64, zone_size=4)
        storm = CorrelatedFaultSchedule.generate(
            3, topo, 600.0, events_per_minute=1.0,
            kinds=[DomainKind.AZ_COOLING],
        )
        assert len(storm) == 10
        assert storm.counts_by_kind() == {"az_cooling": 10}

    def test_rejects_out_of_range_domain(self):
        topo = flat_topology(16, 2)  # 4 racks
        with pytest.raises(FaultError, match="only 4"):
            CorrelatedFaultSchedule(
                topology=topo,
                events=(DomainEvent(DomainKind.RACK_POWER, 4),),
            )

    def test_rejects_bad_generate_arguments(self):
        topo = flat_topology()
        with pytest.raises(FaultError, match="duration"):
            CorrelatedFaultSchedule.generate(0, topo, 0.0)
        with pytest.raises(FaultError, match="events_per_minute"):
            CorrelatedFaultSchedule.generate(0, topo, 60.0,
                                             events_per_minute=-1.0)
        with pytest.raises(FaultError, match="magnitude"):
            CorrelatedFaultSchedule.generate(0, topo, 60.0, min_magnitude=0.9,
                                             max_magnitude=0.5)
        with pytest.raises(FaultError, match="duration range"):
            CorrelatedFaultSchedule.generate(0, topo, 60.0, min_duration_s=0.0)
        with pytest.raises(FaultError, match="kind"):
            CorrelatedFaultSchedule.generate(0, topo, 60.0, kinds=[])

    def test_zero_rate_storm_is_empty(self):
        topo = flat_topology()
        storm = CorrelatedFaultSchedule.generate(0, topo, 300.0,
                                                 events_per_minute=0.0)
        assert len(storm) == 0
        assert storm.affected_zones() == ()
        assert storm.per_instance_schedules() == {}


class TestBlastRadius:
    def test_blast_zones_follow_domain_level(self):
        topo = flat_topology(16, 2)
        storm = CorrelatedFaultSchedule(topology=topo)
        rack_event = DomainEvent(DomainKind.RACK_POWER, 1)
        az_event = DomainEvent(DomainKind.AZ_COOLING, 0)
        assert storm.blast_zones(rack_event) == topo.zones_of_rack(1)
        assert storm.blast_zones(az_event) == topo.zones_of_az(0)

    def test_affected_zones_is_union(self):
        topo = flat_topology(16, 2)
        storm = CorrelatedFaultSchedule(
            topology=topo,
            events=(
                DomainEvent(DomainKind.RACK_POWER, 0),   # zones 0, 1
                DomainEvent(DomainKind.TOR_DEGRADE, 1),  # zones 2, 3
            ),
        )
        assert storm.affected_zones() == (0, 1, 2, 3)
        assert storm.affected_instances() == tuple(range(8))


class TestExpansion:
    def test_expansion_covers_exactly_the_blast_radius(self):
        topo = flat_topology(16, 2)
        storm = CorrelatedFaultSchedule(
            topology=topo,
            seed=5,
            events=(
                DomainEvent(DomainKind.RACK_POWER, 0, at_s=5.0,
                            duration_s=30.0, magnitude=0.6),
            ),
        )
        expansion = storm.per_instance_schedules()
        assert sorted(expansion) == [0, 1, 2, 3]  # rack 0 = zones 0+1
        for schedule in expansion.values():
            assert schedule.seed == 5
            (spec,) = schedule.faults
            assert spec == FaultSpec(
                kind=FaultKind.CORE_OFFLINE, target=ALL_TARGETS,
                at_s=5.0, duration_s=30.0, magnitude=0.6,
            )

    def test_overlapping_events_stack(self):
        topo = flat_topology(16, 2)
        storm = CorrelatedFaultSchedule(
            topology=topo,
            events=(
                DomainEvent(DomainKind.RACK_POWER, 0, at_s=0.0),
                DomainEvent(DomainKind.AZ_COOLING, 0, at_s=10.0),
            ),
        )
        expansion = storm.per_instance_schedules()
        # AZ 0 = racks 0+1 = zones 0..3 = instances 0..7; rack 0 adds a
        # second fault on instances 0..3.
        assert sorted(expansion) == list(range(8))
        assert len(expansion[0].faults) == 2
        assert len(expansion[7].faults) == 1

    def test_expansion_is_repeatable(self):
        topo = FleetTopology.generate(4, n_instances=64, zone_size=4)
        storm = CorrelatedFaultSchedule.generate(4, topo, 300.0,
                                                 events_per_minute=2.0)
        assert storm.per_instance_schedules() == storm.per_instance_schedules()


class TestMergeSchedules:
    def test_merge_onto_none_returns_extra(self):
        extra = FaultSchedule(seed=7, faults=(
            FaultSpec(kind=FaultKind.CORE_OFFLINE, at_s=1.0),
        ))
        assert merge_result(None, extra) is extra

    def test_merge_onto_empty_returns_extra(self):
        extra = FaultSchedule(seed=7, faults=(
            FaultSpec(kind=FaultKind.CORE_OFFLINE, at_s=1.0),
        ))
        assert merge_result(FaultSchedule(seed=1), extra) is extra

    def test_merge_unions_and_resorts(self):
        base = FaultSchedule(seed=1, faults=(
            FaultSpec(kind=FaultKind.DVFS_CAP, at_s=50.0),
        ))
        extra = FaultSchedule(seed=7, faults=(
            FaultSpec(kind=FaultKind.CORE_OFFLINE, at_s=1.0),
        ))
        merged = merge_result(base, extra)
        assert merged.seed == 7
        assert [f.at_s for f in merged.faults] == [1.0, 50.0]


def merge_result(base, extra):
    from repro.faults import merge_schedules

    return merge_schedules(base, extra)
