"""Tests for the Servpod abstraction, profiler and the Rhythm facade."""

from __future__ import annotations

import pytest

from repro.core.profiler import ServiceProfiler
from repro.core.rhythm import Rhythm, RhythmConfig
from repro.core.servpod import Servpod, deploy_service
from repro.cluster.machine import Machine
from repro.errors import ProfilingError
from repro.interference.model import InterferenceModel, Pressure
from repro.sim.rng import RandomStreams

from conftest import make_tiny_service

FAST_LOADS = tuple(round(0.05 * i, 2) for i in range(1, 21))


def fast_rhythm(spec=None, mode: str = "direct") -> Rhythm:
    return Rhythm(
        spec or make_tiny_service(),
        RandomStreams(7),
        RhythmConfig(
            loads=FAST_LOADS, requests_per_load=150, tail_samples=400,
            profiling_mode=mode,
        ),
    )


class TestServpodDeployment:
    def test_one_machine_per_servpod(self, tiny_service):
        deployment = deploy_service(tiny_service)
        assert len(deployment.cluster) == len(tiny_service.servpods)
        assert deployment.cluster.names() == tiny_service.servpod_names

    def test_lc_reserved(self, tiny_service):
        deployment = deploy_service(tiny_service)
        pod = deployment.servpod("back")
        assert pod.machine.lc_cores == tiny_service.servpod("back").cores
        assert pod.machine.lc_llc_ways == tiny_service.servpod("back").llc_ways

    def test_effective_sensitivity_weighted_by_base(self, tiny_service):
        pod = Servpod(spec=tiny_service.servpod("back"), machine=Machine())
        sens = pod.effective_sensitivity()
        # single-component pod: identical to the component's vector
        assert sens == tiny_service.servpod("back").components[0].sensitivity

    def test_slowdown_uses_model(self, tiny_service):
        pod = Servpod(spec=tiny_service.servpod("back"), machine=Machine())
        model = InterferenceModel()
        assert pod.slowdown(Pressure.none(), 0.5, model) == 1.0
        assert pod.slowdown(Pressure(membw=0.8), 0.8, model) > 1.5


class TestProfiler:
    @pytest.mark.parametrize("mode", ["direct", "jaeger", "tracer"])
    def test_modes_agree_on_means(self, mode):
        spec = make_tiny_service()
        profiler = ServiceProfiler(
            spec, RandomStreams(3), loads=(0.2, 0.5, 0.8),
            requests_per_load=200, tail_samples=400, mode=mode,
        )
        result = profiler.profile()
        assert set(result.mean_sojourns) == {"front", "back"}
        # back (base 8ms) outweighs front (base 2ms) in every mode
        for j in range(3):
            assert result.mean_sojourns["back"][j] > result.mean_sojourns["front"][j]

    def test_tails_increase_with_load(self):
        profiler = ServiceProfiler(
            make_tiny_service(), RandomStreams(3), loads=(0.2, 0.5, 0.9),
            requests_per_load=150, tail_samples=2000, mode="direct",
        )
        result = profiler.profile()
        assert result.tails[2] > result.tails[0]

    def test_bad_mode_rejected(self):
        with pytest.raises(ProfilingError):
            ServiceProfiler(make_tiny_service(), mode="bpf")

    def test_too_few_loads_rejected(self):
        with pytest.raises(ProfilingError):
            ServiceProfiler(make_tiny_service(), loads=(0.5, 0.9))


class TestRhythmFacade:
    def test_pipeline_stages_cached(self):
        rhythm = fast_rhythm()
        assert rhythm.profile() is rhythm.profile()
        assert rhythm.contributions() is rhythm.contributions()

    def test_backend_dominates_contribution(self):
        rhythm = fast_rhythm()
        normalized = rhythm.contributions().normalized()
        assert normalized["back"] > normalized["front"]

    def test_loadlimits_follow_knees(self):
        rhythm = fast_rhythm()
        limits = rhythm.loadlimits()
        # back knee 0.6 -> ~0.75; front knee 0.8 -> ~0.85
        assert limits["back"] < limits["front"]
        assert 0.6 < limits["back"] < 0.9
        assert 0.75 < limits["front"] <= 1.0

    def test_analytic_slacklimits_without_probe(self):
        rhythm = fast_rhythm()
        limits = rhythm.slacklimits()
        assert set(limits) == {"front", "back"}
        assert all(0.01 <= v <= 1.0 for v in limits.values())

    def test_probe_driven_slacklimits(self):
        rhythm = fast_rhythm()

        def probe(cfg):
            return cfg.get("back", 1.0) < 0.3  # aggressive back violates

        limits = rhythm.slacklimits(probe)
        assert limits["back"] >= 0.3

    def test_controllers_configured(self):
        rhythm = fast_rhythm()
        controllers = rhythm.controllers()
        assert set(controllers) == {"front", "back"}
        ctrl = controllers["back"]
        assert ctrl.sla_ms == rhythm.spec.sla_ms
        assert ctrl.thresholds.loadlimit == rhythm.loadlimits()["back"]

    def test_threshold_overrides(self):
        rhythm = fast_rhythm()
        rhythm.slacklimits()
        rhythm.set_slacklimits({"back": 0.5})
        assert rhythm.slacklimits()["back"] == 0.5
        rhythm.set_loadlimits({"front": 0.9})
        assert rhythm.loadlimits()["front"] == 0.9

    def test_override_unknown_pod_rejected(self):
        rhythm = fast_rhythm()
        with pytest.raises(ProfilingError):
            rhythm.set_slacklimits({"ghost": 0.5})

    def test_unknown_servpod_thresholds_rejected(self):
        rhythm = fast_rhythm()
        with pytest.raises(ProfilingError):
            rhythm.thresholds("ghost")
