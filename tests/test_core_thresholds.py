"""Tests for loadlimit (Fig. 8) and slacklimit (Algorithm 1) derivation."""

from __future__ import annotations

import math

import pytest

from repro.core.loadlimit import derive_loadlimit, loadlimit_table
from repro.core.slacklimit import (
    MIN_SLACKLIMIT,
    expected_first_step,
    find_slacklimits,
    find_slacklimits_independent,
    violation_free_fixed_point,
)
from repro.errors import ProfilingError


def knee_cov(loads, knee, sigma0=0.3, growth=2.0):
    """CoV curve of the knee sigma model (what catalog components use)."""
    out = []
    for u in loads:
        ramp = max(0.0, (u - knee) / (1 - knee))
        sigma = sigma0 * (1 + growth * ramp**2)
        out.append(math.sqrt(math.exp(sigma**2) - 1))
    return out


LOADS = [round(0.02 * i, 2) for i in range(1, 51)]


class TestLoadlimit:
    def test_knee_placement(self):
        """Crossing lands near knee + (1-knee)^1.5/sqrt(3)."""
        for knee in (0.6, 0.76, 0.85):
            covs = knee_cov(LOADS, knee)
            limit = derive_loadlimit(LOADS, covs)
            predicted = knee + (1 - knee) ** 1.5 / math.sqrt(3)
            assert limit == pytest.approx(predicted, abs=0.06)

    def test_later_knee_later_limit(self):
        early = derive_loadlimit(LOADS, knee_cov(LOADS, 0.6))
        late = derive_loadlimit(LOADS, knee_cov(LOADS, 0.85))
        assert late > early

    def test_flat_curve_returns_last_load(self):
        covs = [0.3] * len(LOADS)
        assert derive_loadlimit(LOADS, covs) == LOADS[-1]

    def test_smoothing_suppresses_single_spike(self):
        covs = [0.3] * len(LOADS)
        covs[5] = 3.0  # one-point glitch early in the sweep
        unsmoothed = derive_loadlimit(LOADS, covs, smoothing_window=1)
        assert unsmoothed == LOADS[5]  # the glitch triggers immediately
        limit = derive_loadlimit(LOADS, covs, smoothing_window=3)
        # Smoothing spreads the spike but keeps the crossing in its
        # 3-point neighbourhood rather than propagating further.
        assert abs(LOADS.index(limit) - 5) <= 1

    def test_validation(self):
        with pytest.raises(ProfilingError):
            derive_loadlimit([0.1, 0.2], [0.1, 0.2])  # too few points
        with pytest.raises(ProfilingError):
            derive_loadlimit([0.1, 0.1, 0.2], [0.1, 0.2, 0.3])  # not increasing
        with pytest.raises(ProfilingError):
            derive_loadlimit(LOADS, [-1.0] * len(LOADS))
        with pytest.raises(ProfilingError):
            derive_loadlimit(LOADS, knee_cov(LOADS, 0.7), smoothing_window=4)

    def test_table(self):
        table = loadlimit_table(
            LOADS, {"a": knee_cov(LOADS, 0.6), "b": knee_cov(LOADS, 0.85)}
        )
        assert set(table) == {"a", "b"}
        assert table["b"] > table["a"]


class TestSlacklimitJoint:
    def test_no_violation_walks_to_fixed_point(self):
        contributions = {"a": 0.3, "b": 0.7}
        limits = find_slacklimits(contributions, lambda cfg: False)
        assert limits == violation_free_fixed_point(contributions)

    def test_first_step_equals_normalized_contribution(self):
        contributions = {"a": 0.2, "b": 0.35, "c": 0.45}
        first = expected_first_step(contributions)
        assert sum(first.values()) == pytest.approx(1.0)
        assert first["b"] == pytest.approx(0.35)

    def test_violation_reverts_to_previous_round(self):
        contributions = {"a": 0.25, "b": 0.75}
        calls = []

        def probe(cfg):
            calls.append(dict(cfg))
            return len(calls) >= 2  # second round violates

        limits = find_slacklimits(contributions, probe)
        assert limits == calls[0]

    def test_immediate_violation_keeps_initial(self):
        limits = find_slacklimits({"a": 0.5, "b": 0.5}, lambda cfg: True)
        assert limits == {"a": 1.0, "b": 1.0}

    def test_small_contribution_floors_at_min(self):
        limits = find_slacklimits({"tiny": 0.001, "big": 0.999}, lambda cfg: False)
        assert limits["tiny"] == MIN_SLACKLIMIT

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            find_slacklimits({}, lambda cfg: False)

    def test_zero_total_rejected(self):
        with pytest.raises(ProfilingError):
            find_slacklimits({"a": 0.0}, lambda cfg: False)


class TestSlacklimitIndependent:
    def test_others_held_conservative(self):
        seen = []

        def probe(cfg):
            seen.append(dict(cfg))
            return False

        find_slacklimits_independent({"a": 0.3, "b": 0.7}, probe)
        for cfg in seen:
            moving = [pod for pod, v in cfg.items() if v < 1.0]
            assert len(moving) == 1

    def test_one_pod_violation_does_not_reset_others(self):
        def probe(cfg):
            return cfg.get("b", 1.0) < 1.0  # any move of b violates

        limits = find_slacklimits_independent({"a": 0.3, "b": 0.7}, probe)
        assert limits["b"] == 1.0
        assert limits["a"] < 1.0

    def test_backtracks_within_own_walk(self):
        # c=0.75 normalized alone -> steps of 0.25: 0.75, 0.5, 0.25 ...
        def probe(cfg):
            return cfg["big"] < 0.45  # 0.25 candidate violates

        limits = find_slacklimits_independent({"big": 3.0, "small": 1.0}, probe)
        assert limits["big"] == pytest.approx(0.5)

    def test_fixed_point_matches_probe_free_walk(self):
        contributions = {"a": 0.25, "b": 0.6, "c": 0.15}
        walked = find_slacklimits_independent(contributions, lambda cfg: False)
        assert walked == pytest.approx(violation_free_fixed_point(contributions))


class TestFixedPoint:
    def test_below_half_is_contribution(self):
        fp = violation_free_fixed_point({"a": 0.3, "b": 0.7})
        assert fp["a"] == pytest.approx(0.3)

    def test_above_half_wraps(self):
        fp = violation_free_fixed_point({"a": 0.3, "b": 0.7})
        # b: step 0.3 -> 0.7, 0.4, 0.1 -> last positive above floor
        assert fp["b"] == pytest.approx(0.1, abs=0.01)

    def test_dominant_pod_stays_conservative(self):
        fp = violation_free_fixed_point({"a": 1.0, "b": 0.0000001})
        assert fp["a"] == 1.0
