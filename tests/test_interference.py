"""Tests for sensitivity vectors, isolation and the interference model."""

from __future__ import annotations

import pytest

from repro.bejobs.job import BeResourceSnapshot
from repro.errors import ConfigurationError
from repro.interference.isolation import IsolationConfig
from repro.interference.model import InterferenceModel, Pressure
from repro.interference.sensitivity import SensitivityVector


class TestSensitivityVector:
    def test_defaults_zero(self):
        assert SensitivityVector().magnitude == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            SensitivityVector(llc=-0.1)

    def test_coefficient_lookup(self):
        v = SensitivityVector(membw=1.5)
        assert v.coefficient("membw") == 1.5
        with pytest.raises(ConfigurationError):
            v.coefficient("disk")

    def test_scaled(self):
        v = SensitivityVector(cpu=1.0, llc=2.0).scaled(0.5)
        assert v.cpu == 0.5 and v.llc == 1.0


class TestPressure:
    def test_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            Pressure(membw=1.5)
        with pytest.raises(ConfigurationError):
            Pressure(cpu=-0.1)

    def test_none_is_zero(self):
        assert Pressure.none().is_zero()

    def test_from_snapshot_uses_isolation(self):
        snap = BeResourceSnapshot(
            busy_cores=20.0,
            membw_fraction=0.6,
            llc_demand_fraction=0.8,
            llc_occupied_fraction=0.4,
            net_fraction=0.3,
        )
        iso = IsolationConfig()
        p = Pressure.from_be_snapshot(snap, total_cores=40, isolation=iso)
        assert p.cpu == pytest.approx(iso.cpu_pressure(0.5))
        assert p.llc == pytest.approx(iso.llc_pressure(0.4, 0.8))
        assert p.membw == pytest.approx(0.6)
        assert p.net == pytest.approx(0.3)
        assert p.freq == 0.0

    def test_freq_pressure_from_lc_throttling(self):
        p = Pressure.from_be_snapshot(
            BeResourceSnapshot(), 40, IsolationConfig(), lc_freq_ratio=0.8
        )
        assert p.freq == pytest.approx(0.2)


class TestIsolation:
    def test_cpuset_attenuates_cpu_pressure(self):
        iso = IsolationConfig()
        raw = IsolationConfig(cpuset=False)
        assert iso.cpu_pressure(0.5) < raw.cpu_pressure(0.5)

    def test_cat_attenuates_llc_pressure(self):
        iso = IsolationConfig()
        raw = IsolationConfig(cat=False)
        assert iso.llc_pressure(0.5, 0.9) < raw.llc_pressure(0.5, 0.9)

    def test_cat_leak_scales_with_demand(self):
        iso = IsolationConfig()
        assert iso.llc_pressure(0.2, 0.9) > iso.llc_pressure(0.2, 0.2)

    def test_pressure_capped_at_one(self):
        raw = IsolationConfig(cpuset=False)
        assert raw.cpu_pressure(5.0) == 1.0

    def test_leak_range_validated(self):
        with pytest.raises(ConfigurationError):
            IsolationConfig(cat_leak=1.5)


class TestInterferenceModel:
    def test_zero_pressure_no_slowdown(self):
        model = InterferenceModel()
        assert model.slowdown(SensitivityVector(membw=5.0), Pressure.none(), 0.9) == 1.0

    def test_slowdown_grows_with_load(self):
        """Figure 2's per-panel shape: degradation rises with load."""
        model = InterferenceModel()
        sens = SensitivityVector(membw=2.0)
        p = Pressure(membw=0.8)
        slowdowns = [model.slowdown(sens, p, u) for u in (0.2, 0.4, 0.6, 0.8)]
        assert slowdowns == sorted(slowdowns)
        assert slowdowns[-1] > slowdowns[0]

    def test_slowdown_grows_with_sensitivity(self):
        """Figure 2's cross-component asymmetry."""
        model = InterferenceModel()
        p = Pressure(llc=1.0)
        weak = model.slowdown(SensitivityVector(llc=0.1), p, 0.6)
        strong = model.slowdown(SensitivityVector(llc=2.5), p, 0.6)
        assert strong > weak * 5

    def test_convex_pressure_response(self):
        """Half-intensity stressors hurt much less than half as much
        (big vs small stream variants in Figure 2)."""
        model = InterferenceModel()
        sens = SensitivityVector(membw=2.0)
        full = model.slowdown(sens, Pressure(membw=1.0), 0.6) - 1.0
        half = model.slowdown(sens, Pressure(membw=0.5), 0.6) - 1.0
        assert half < full / 2

    def test_amplification_monotone_and_finite(self):
        model = InterferenceModel()
        assert model.load_amplification(0.0) == pytest.approx(1.0)
        assert model.load_amplification(1.0) > model.load_amplification(0.5)
        assert model.load_amplification(1.0) < 100

    def test_sigma_inflation_capped(self):
        model = InterferenceModel()
        assert model.sigma_inflation(1.0) == 1.0
        assert model.sigma_inflation(1000.0) == model.sigma_cap

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            InterferenceModel(gamma=0.5)
        with pytest.raises(ConfigurationError):
            InterferenceModel(headroom=0.0)
        with pytest.raises(ConfigurationError):
            InterferenceModel(sigma_cap=0.5)

    def test_multi_resource_impacts_add(self):
        model = InterferenceModel()
        sens = SensitivityVector(llc=1.0, membw=1.0)
        only_llc = model.slowdown(sens, Pressure(llc=0.5), 0.5)
        only_mem = model.slowdown(sens, Pressure(membw=0.5), 0.5)
        both = model.slowdown(sens, Pressure(llc=0.5, membw=0.5), 0.5)
        assert both - 1.0 == pytest.approx((only_llc - 1.0) + (only_mem - 1.0))
