"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_args(self):
        args = build_parser().parse_args(["profile", "Redis", "--no-probe"])
        assert args.service == "Redis"
        assert args.no_probe is True

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "Redis", "stream-dram"])
        assert args.load == 0.65
        assert args.duration == 120.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E-commerce" in out
        assert "SNMS" in out
        assert "stream-dram" in out

    def test_profile_without_probe(self, capsys):
        assert main(["profile", "Redis", "--no-probe"]) == 0
        out = capsys.readouterr().out
        assert "master" in out and "slave" in out
        assert "loadlimit" in out

    def test_profile_unknown_service_fails_cleanly(self, capsys):
        assert main(["profile", "Netflix", "--no-probe"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_unknown_be_fails_cleanly(self, capsys):
        assert main(["compare", "Redis", "fortnite"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace(self, capsys):
        assert main(["trace", "Redis", "--requests", "30"]) == 0
        out = capsys.readouterr().out
        assert "kernel events" in out
        assert "master" in out


class TestFleetCli:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.machines == 1000
        assert args.shards == 4
        assert args.violation_threshold is None
        assert args.policies == ["rhythm", "heracles"]

    def test_fleet_cache_flag_defaults_on(self):
        args = build_parser().parse_args(["fleet"])
        assert args.cache is True
        assert build_parser().parse_args(["fleet", "--no-cache"]).cache is False

    def test_fleet_runs_small(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        out_file = tmp_path / "fleet.json"
        argv = [
            "fleet", "--machines", "4", "--duration", "20",
            "--shards", "2", "--workers", "1", "--seed", "3",
            "--zone-size", "1", "--policies", "heracles",
            "--json", str(out_file),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "heracles" in out and "Fleet" in out
        assert "misses" in out and "zones" in out  # the cache stats line
        import json as _json

        report = _json.loads(out_file.read_text())
        assert report["heracles"]["machines"] >= 4
        assert report["heracles"]["digest"]
        assert report["heracles"]["cache"]["misses"] > 0
        # A warm CLI re-run serves every zone from the store.
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        warm = _json.loads(out_file.read_text())
        assert warm["heracles"]["cache"]["misses"] == 0
        assert warm["heracles"]["cache"]["hits"] > 0
        assert warm["heracles"]["digest"] == report["heracles"]["digest"]
        assert "0 misses" in warm_out

    def test_fleet_no_cache_has_no_stats_line(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        assert main([
            "fleet", "--machines", "2", "--duration", "10",
            "--workers", "1", "--zone-size", "1",
            "--policies", "heracles", "--no-cache",
        ]) == 0
        assert "zones" not in capsys.readouterr().out


class TestCacheCli:
    def test_grid_cache_flag_defaults_on(self):
        args = build_parser().parse_args(["grid", "servpod"])
        assert args.cache is True

    def test_grid_no_cache_flag(self):
        args = build_parser().parse_args(["grid", "servpod", "--no-cache"])
        assert args.cache is False

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_cache_stats(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cachedir" in out
        assert "entries" in out

    def test_cache_clear(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        from repro.cache import CacheStore, stable_hash

        store = CacheStore(tmp_path / "cachedir")
        store.put(stable_hash("x"), 1)
        assert main(["cache", "clear"]) == 0
        assert "1" in capsys.readouterr().out
        assert store.stats().entries == 0
