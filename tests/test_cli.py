"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_args(self):
        args = build_parser().parse_args(["profile", "Redis", "--no-probe"])
        assert args.service == "Redis"
        assert args.no_probe is True

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "Redis", "stream-dram"])
        assert args.load == 0.65
        assert args.duration == 120.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E-commerce" in out
        assert "SNMS" in out
        assert "stream-dram" in out

    def test_profile_without_probe(self, capsys):
        assert main(["profile", "Redis", "--no-probe"]) == 0
        out = capsys.readouterr().out
        assert "master" in out and "slave" in out
        assert "loadlimit" in out

    def test_profile_unknown_service_fails_cleanly(self, capsys):
        assert main(["profile", "Netflix", "--no-probe"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_unknown_be_fails_cleanly(self, capsys):
        assert main(["compare", "Redis", "fortnite"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace(self, capsys):
        assert main(["trace", "Redis", "--requests", "30"]) == 0
        out = capsys.readouterr().out
        assert "kernel events" in out
        assert "master" in out


class TestFleetCli:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.machines == 1000
        assert args.shards == 4
        assert args.violation_threshold is None
        assert args.policies == ["rhythm", "heracles"]

    def test_fleet_cache_flag_defaults_on(self):
        args = build_parser().parse_args(["fleet"])
        assert args.cache is True
        assert build_parser().parse_args(["fleet", "--no-cache"]).cache is False

    def test_fleet_runs_small(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        out_file = tmp_path / "fleet.json"
        argv = [
            "fleet", "--machines", "4", "--duration", "20",
            "--shards", "2", "--workers", "1", "--seed", "3",
            "--zone-size", "1", "--policies", "heracles",
            "--json", str(out_file),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "heracles" in out and "Fleet" in out
        assert "misses" in out and "zones" in out  # the cache stats line
        import json as _json

        report = _json.loads(out_file.read_text())
        assert report["heracles"]["machines"] >= 4
        assert report["heracles"]["digest"]
        assert report["heracles"]["cache"]["misses"] > 0
        # A warm CLI re-run serves every zone from the store.
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        warm = _json.loads(out_file.read_text())
        assert warm["heracles"]["cache"]["misses"] == 0
        assert warm["heracles"]["cache"]["hits"] > 0
        assert warm["heracles"]["digest"] == report["heracles"]["digest"]
        assert "0 misses" in warm_out

    def test_fleet_no_cache_has_no_stats_line(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        assert main([
            "fleet", "--machines", "2", "--duration", "10",
            "--workers", "1", "--zone-size", "1",
            "--policies", "heracles", "--no-cache",
        ]) == 0
        assert "zones" not in capsys.readouterr().out


class TestCacheCli:
    def test_grid_cache_flag_defaults_on(self):
        args = build_parser().parse_args(["grid", "servpod"])
        assert args.cache is True

    def test_grid_no_cache_flag(self):
        args = build_parser().parse_args(["grid", "servpod", "--no-cache"])
        assert args.cache is False

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_cache_stats(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cachedir" in out
        assert "entries" in out

    def test_cache_clear(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        from repro.cache import CacheStore, stable_hash

        store = CacheStore(tmp_path / "cachedir")
        store.put(stable_hash("x"), 1)
        assert main(["cache", "clear"]) == 0
        assert "1" in capsys.readouterr().out
        assert store.stats().entries == 0


class TestStormCli:
    def test_storm_defaults(self):
        args = build_parser().parse_args(["storm"])
        assert args.machines == 1000
        assert args.storm_seed == 1
        assert args.events_per_minute == 1.0
        assert args.policies == ["rhythm", "heracles"]
        assert args.cache is True
        assert args.baseline is False

    def test_storm_runs_small(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        out_file = tmp_path / "storm.json"
        argv = [
            "storm", "--machines", "8", "--duration", "40",
            "--shards", "2", "--workers", "1", "--seed", "3",
            "--storm-seed", "7", "--events-per-minute", "2",
            "--zone-size", "2", "--policies", "heracles",
            "--baseline", "--json", str(out_file),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "storm seed 7" in out
        assert "blast zones" in out
        assert "viols vs healthy" in out
        import json as _json

        report = _json.loads(out_file.read_text())
        assert report["topology"]["instances"] == 4
        assert report["events"]
        for event in report["events"]:
            assert event["blast_zones"]
        assert report["policies"]["heracles"]["digest"]
        assert report["baselines"]["heracles"]["digest"]
        # A warm CLI re-run of the identical storm is all cache hits.
        assert main(argv) == 0
        capsys.readouterr()
        warm = _json.loads(out_file.read_text())
        assert warm["policies"]["heracles"]["digest"] == (
            report["policies"]["heracles"]["digest"]
        )

    def test_storm_shard_count_does_not_change_digest(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        digests = []
        for shards in ("1", "2"):
            out_file = tmp_path / f"storm-{shards}.json"
            assert main([
                "storm", "--machines", "8", "--duration", "40",
                "--shards", shards, "--workers", "1",
                "--zone-size", "2", "--policies", "heracles",
                "--no-cache", "--json", str(out_file),
            ]) == 0
            capsys.readouterr()
            import json as _json

            digests.append(
                _json.loads(out_file.read_text())["policies"]["heracles"]["digest"]
            )
        assert digests[0] == digests[1]


class TestScenarioCli:
    def test_scenario_requires_kind(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_defaults(self):
        args = build_parser().parse_args(["scenario", "canary"])
        assert args.kind == "canary"
        assert args.slowdown == 0.08
        assert args.threshold == 1.10
        assert args.multipliers == [1.0, 1.5, 2.0]

    def test_canary_runs_small(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        out_file = tmp_path / "canary.json"
        assert main([
            "scenario", "canary", "--machines", "8", "--duration", "40",
            "--seed", "3", "--slowdown", "0.5", "--json", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "canary rollout" in out
        assert "REGRESSED" in out
        import json as _json

        report = _json.loads(out_file.read_text())
        assert report["kind"] == "canary"
        assert report["detection_rate"] == 1.0
        assert report["digest"] != report["baseline_digest"]

    def test_drift_runs_small(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        out_file = tmp_path / "drift.json"
        assert main([
            "scenario", "drift", "--epochs", "2", "--json", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "workload drift" in out
        import json as _json

        report = _json.loads(out_file.read_text())
        assert report["kind"] == "drift"
        assert len(report["epochs"]) == 2
        # The cached second epoch only simulates the newly-entered point.
        assert report["epochs"][1]["sweep_cache_hits"] > 0

    def test_capacity_runs_small(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        out_file = tmp_path / "capacity.json"
        assert main([
            "scenario", "capacity", "--multipliers", "1.0", "2.0",
            "--duration", "40", "--json", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "capacity plan" in out
        import json as _json

        report = _json.loads(out_file.read_text())
        assert report["kind"] == "capacity"
        machines = [row["machines"] for row in report["rows"]]
        assert machines == sorted(machines)


class TestTraceCli:
    def test_fleet_trace_flag(self, capsys, monkeypatch, tmp_path):
        from repro.loadgen.alibaba import DATA_FILE

        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        assert main([
            "fleet", "--machines", "4", "--duration", "20",
            "--workers", "1", "--zone-size", "1", "--policies", "heracles",
            "--load", "alibaba", "--trace", str(DATA_FILE), "--no-cache",
        ]) == 0
        assert "heracles" in capsys.readouterr().out

    def test_fleet_trace_requires_alibaba_load(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        assert main([
            "fleet", "--machines", "4", "--duration", "20",
            "--trace", "somefile.csv",
        ]) != 0
        assert "error:" in capsys.readouterr().err

    def test_fleet_missing_trace_fails_cleanly(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "cachedir"))
        assert main([
            "fleet", "--machines", "4", "--duration", "20",
            "--load", "alibaba", "--trace", str(tmp_path / "absent.csv"),
        ]) != 0
        assert "error:" in capsys.readouterr().err
