"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_args(self):
        args = build_parser().parse_args(["profile", "Redis", "--no-probe"])
        assert args.service == "Redis"
        assert args.no_probe is True

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "Redis", "stream-dram"])
        assert args.load == 0.65
        assert args.duration == 120.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E-commerce" in out
        assert "SNMS" in out
        assert "stream-dram" in out

    def test_profile_without_probe(self, capsys):
        assert main(["profile", "Redis", "--no-probe"]) == 0
        out = capsys.readouterr().out
        assert "master" in out and "slave" in out
        assert "loadlimit" in out

    def test_profile_unknown_service_fails_cleanly(self, capsys):
        assert main(["profile", "Netflix", "--no-probe"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_unknown_be_fails_cleanly(self, capsys):
        assert main(["compare", "Redis", "fortnite"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace(self, capsys):
        assert main(["trace", "Redis", "--requests", "30"]) == 0
        out = capsys.readouterr().out
        assert "kernel events" in out
        assert "master" in out
