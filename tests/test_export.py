"""Tests for CSV export of experiment rows."""

from __future__ import annotations

import csv
from dataclasses import dataclass

import pytest

from repro.errors import ExperimentError
from repro.experiments.export import rows_to_csv, timeline_to_csv


@dataclass(frozen=True)
class _Row:
    service: str
    value_a: float
    value_b: float

    @property
    def ratio(self) -> float:
        return self.value_a / self.value_b


class TestRowsToCsv:
    def test_writes_fields_and_properties(self, tmp_path):
        rows = [_Row("svc", 2.0, 4.0), _Row("svc2", 1.0, 2.0)]
        path = rows_to_csv(rows, tmp_path / "out.csv")
        with path.open() as fh:
            data = list(csv.DictReader(fh))
        assert len(data) == 2
        assert data[0]["service"] == "svc"
        assert float(data[0]["ratio"]) == pytest.approx(0.5)

    def test_without_properties(self, tmp_path):
        path = rows_to_csv([_Row("s", 1.0, 2.0)], tmp_path / "o.csv",
                           include_properties=False)
        with path.open() as fh:
            header = fh.readline().strip().split(",")
        assert header == ["service", "value_a", "value_b"]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            rows_to_csv([], tmp_path / "o.csv")

    def test_mixed_types_rejected(self, tmp_path):
        @dataclass
        class Other:
            x: int

        with pytest.raises(ExperimentError):
            rows_to_csv([_Row("s", 1.0, 2.0), Other(1)], tmp_path / "o.csv")

    def test_non_dataclass_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            rows_to_csv([{"a": 1}], tmp_path / "o.csv")

    def test_real_driver_rows_export(self, tmp_path):
        from repro.experiments.figures.table1 import table1_rows

        lc_rows, _ = table1_rows()
        path = rows_to_csv(lc_rows, tmp_path / "table1.csv")
        with path.open() as fh:
            data = list(csv.DictReader(fh))
        assert {row["workload"] for row in data} >= {"E-commerce", "Redis", "SNMS"}


class TestTimelineToCsv:
    def test_exports_long_format(self, tmp_path):
        from repro.experiments.colocation import ColocationConfig
        from repro.experiments.figures.figure17 import run_figure17

        data = run_figure17(
            duration_s=60.0, config=ColocationConfig(duration_s=60.0)
        )
        path = timeline_to_csv(data, tmp_path / "timeline.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert {r["servpod"] for r in rows} == {"tomcat", "mysql"}
        assert len(rows) == 2 * 30  # two pods x 30 control periods
        assert all("action" in r for r in rows)
