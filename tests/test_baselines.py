"""Tests for the Heracles and LC-solo baselines."""

from __future__ import annotations

import pytest

from repro.baselines.heracles import HeraclesPolicy, heracles_controllers
from repro.baselines.static import LcSoloPolicy
from repro.core.actions import BeAction

from conftest import make_tiny_service


class TestHeracles:
    def test_uniform_thresholds(self):
        spec = make_tiny_service()
        controllers = heracles_controllers(spec)
        assert set(controllers) == set(spec.servpod_names)
        for ctrl in controllers.values():
            assert ctrl.thresholds.loadlimit == 0.85
            assert ctrl.thresholds.slacklimit == 0.10

    def test_disables_at_85_percent(self):
        """Paper §5.2.1: no Heracles co-location at the 85% grid point."""
        controllers = heracles_controllers(make_tiny_service())
        for ctrl in controllers.values():
            assert ctrl.decide(load=0.85, tail_ms=1.0) == BeAction.SUSPEND_BE

    def test_allows_below_slack_gate(self):
        ctrl = heracles_controllers(make_tiny_service())["back"]
        # slack 0.5 > 0.10 -> grow
        assert ctrl.decide(load=0.5, tail_ms=50.0) == BeAction.ALLOW_BE_GROWTH
        # slack 0.07 in (0.05, 0.10) -> disallow growth
        assert ctrl.decide(load=0.5, tail_ms=93.0) == BeAction.DISALLOW_BE_GROWTH
        # slack 0.03 < 0.05 -> cut
        assert ctrl.decide(load=0.5, tail_ms=97.0) == BeAction.CUT_BE

    def test_custom_policy(self):
        controllers = heracles_controllers(
            make_tiny_service(), HeraclesPolicy(loadlimit=0.7, slacklimit=0.2)
        )
        assert controllers["front"].thresholds.loadlimit == 0.7


class TestLcSolo:
    def test_never_colocates(self):
        controllers = LcSoloPolicy().controllers(make_tiny_service())
        for ctrl in controllers.values():
            for load, tail in ((0.1, 1.0), (0.9, 1.0), (0.5, 200.0)):
                assert ctrl.decide(load, tail) == BeAction.STOP_BE

    def test_history_still_recorded(self):
        ctrl = LcSoloPolicy().controllers(make_tiny_service())["front"]
        ctrl.decide(0.5, 1.0, t=2.0)
        assert ctrl.history == [(2.0, BeAction.STOP_BE)]
