"""Content-addressed result cache and incremental grid re-execution.

Covers the issue's acceptance criteria:

- cache keys are stable across processes and ``PYTHONHASHSEED`` values,
- keys change when anything result-affecting changes (spec, seed,
  config, artifact, code-version salt),
- corrupted / foreign / truncated entries are dropped and recomputed,
  never crash a run,
- LRU eviction keeps the store under its size cap,
- ``RHYTHM_CACHE=off`` bypasses the default store entirely,
- a warm ``run_comparison_grid`` re-run executes zero simulations and
  returns bit-identical results,
- the vectorized sampling hot path is bit-identical to the historical
  scalar implementation (end-to-end colocation fingerprint gate).
"""

from __future__ import annotations

import math
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bejobs.catalog import evaluation_be_jobs
from repro.cache import (
    CacheStore,
    cache_enabled,
    default_store,
    resolve_cache_dir,
    stable_hash,
)
from repro.cache.store import ENVELOPE_FORMAT, resolve_max_bytes
from repro.errors import CacheError, CacheKeyError
from repro.experiments.colocation import ColocationConfig
from repro.experiments.runner import clear_rhythm_cache
from repro.loadgen.patterns import CallableLoad, ConstantLoad, StepLoad
from repro.parallel import (
    GridCacheStats,
    GridCell,
    artifact_for,
    comparison_fingerprint,
    profile_services,
    run_comparison_grid,
)
from repro.parallel.grid import _CellTask, cell_cache_key
from repro.parallel.profile import clear_profile_memo
from repro.workloads.latency import LatencyModel
from conftest import make_tiny_service

import repro.parallel.grid as grid_module
import repro.parallel.profile as profile_module


@pytest.fixture(scope="module", autouse=True)
def _fresh_rhythm_cache():
    clear_rhythm_cache()
    clear_profile_memo()
    yield
    clear_rhythm_cache()
    clear_profile_memo()


@pytest.fixture(scope="module")
def tiny_artifact():
    service = make_tiny_service()
    return service, artifact_for(service, seed=0, probe_slacklimits=False)


@pytest.fixture
def store(tmp_path) -> CacheStore:
    return CacheStore(tmp_path / "cache")


FAST = ColocationConfig(duration_s=20.0, sample_cap=150, min_samples=50)


class TestStableHash:
    def test_deterministic(self):
        obj = ("grid-cell", make_tiny_service(), 0.45, 7, {"a": [1.5, None]})
        assert stable_hash(obj) == stable_hash(obj)

    def test_type_tags_prevent_collisions(self):
        assert len({stable_hash(v) for v in (1, 1.0, "1", True, b"1")}) == 5

    def test_container_shape_matters(self):
        assert stable_hash([1, 2]) != stable_hash([[1], 2])
        assert stable_hash({"a": 1}) != stable_hash([("a", 1)])

    def test_dict_order_does_not_matter(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_float_precision_is_exact(self):
        assert stable_hash(0.1 + 0.2) != stable_hash(0.3)
        assert stable_hash(float("nan")) == stable_hash(float("nan"))

    def test_numpy_values_hash_like_scalars_do_not_collide(self):
        arr = np.array([1.0, 2.0])
        assert stable_hash(arr) == stable_hash(arr.copy())
        assert stable_hash(arr) != stable_hash(arr.astype(np.float32))

    def test_salt_changes_key(self):
        assert stable_hash("x") != stable_hash("x", salt="other-salt")

    def test_dataclass_fields_covered(self):
        a = ConstantLoad(0.4)
        b = ConstantLoad(0.5)
        assert stable_hash(a) != stable_hash(b)
        assert stable_hash(a) == stable_hash(ConstantLoad(0.4))

    def test_service_spec_hashes(self):
        assert stable_hash(make_tiny_service()) == stable_hash(make_tiny_service())
        assert stable_hash(make_tiny_service()) != stable_hash(
            make_tiny_service(sla_ms=120.0)
        )

    def test_callable_raises(self):
        with pytest.raises(CacheKeyError):
            stable_hash(lambda t: 0.5)
        with pytest.raises(CacheKeyError):
            stable_hash(CallableLoad(lambda t: 0.5))

    def test_stable_across_processes_and_hash_seeds(self):
        script = (
            "import sys\n"
            f"sys.path.insert(0, {str(Path('src').resolve())!r})\n"
            f"sys.path.insert(0, {str(Path('tests').resolve())!r})\n"
            "from conftest import make_tiny_service\n"
            "from repro.cache import stable_hash\n"
            "print(stable_hash(('grid-cell', make_tiny_service(), 0.45, 7)))\n"
        )
        digests = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(out.stdout.strip())
        digests.add(stable_hash(("grid-cell", make_tiny_service(), 0.45, 7)))
        assert len(digests) == 1


class TestCacheStore:
    def _key(self, token: str) -> str:
        return stable_hash(token)

    def test_roundtrip(self, store):
        key = self._key("a")
        assert store.get(key) is None
        assert store.put(key, {"value": [1.5, "x"]})
        assert store.get(key) == {"value": [1.5, "x"]}
        assert store.contains(key)
        assert store.hits == 1 and store.misses == 1 and store.stores == 1

    def test_malformed_key_rejected(self, store):
        with pytest.raises(CacheError):
            store.get("../../etc/passwd")
        with pytest.raises(CacheError):
            store.put("UPPER", 1)

    def test_corrupted_entry_recovers(self, store):
        key = self._key("corrupt")
        store.put(key, 123)
        store._path(key).write_bytes(b"\x80\x05 this is not a pickle")
        assert store.get(key) is None
        assert store.errors == 1
        assert not store.contains(key)  # bad file deleted
        # The slot is usable again.
        assert store.put(key, 456) and store.get(key) == 456

    def test_foreign_envelope_format_is_a_miss(self, store):
        key = self._key("foreign")
        store.put(key, 1)
        path = store._path(key)
        with open(path, "wb") as fh:
            pickle.dump(
                {"format": ENVELOPE_FORMAT + 1, "key": key, "payload": 1}, fh
            )
        assert store.get(key) is None
        assert not path.exists()

    def test_key_mismatch_is_a_miss(self, store):
        key = self._key("mismatch")
        other = self._key("other")
        store.put(key, 1)
        store._path(other).parent.mkdir(exist_ok=True)
        os.replace(store._path(key), store._path(other))
        assert store.get(other) is None

    def test_unpicklable_payload_swallowed(self, store):
        assert store.put(self._key("bad"), lambda: None) is False
        assert store.errors == 1
        assert store.stats().entries == 0

    def test_lru_eviction(self, tmp_path):
        probe = CacheStore(tmp_path / "probe")
        probe.put(self._key("probe"), "x" * 1000)
        entry_bytes = probe.stats().total_bytes
        store = CacheStore(tmp_path / "lru", max_bytes=int(2.5 * entry_bytes))
        keys = [self._key(f"k{i}") for i in range(3)]
        store.put(keys[0], "x" * 1000)
        store.put(keys[1], "x" * 1000)
        # Make keys[0] stale and keys[1] fresh, then overflow the cap.
        os.utime(store._path(keys[0]), times=(1.0, 1.0))
        os.utime(store._path(keys[1]), times=(2.0, 2.0))
        store.put(keys[2], "x" * 1000)
        assert store.evictions == 1
        assert not store.contains(keys[0])  # the LRU entry went first
        assert store.contains(keys[1]) and store.contains(keys[2])
        assert store.stats().total_bytes <= store.max_bytes

    def test_clear_and_stats(self, store):
        for token in ("a", "b", "c"):
            store.put(self._key(token), token)
        assert store.stats().entries == 3
        assert store.clear() == 3
        assert store.stats().entries == 0 and store.stats().total_bytes == 0

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            CacheStore(tmp_path, max_bytes=0)


class TestEnvironmentControls:
    @pytest.mark.parametrize("value", ["off", "0", "false", "no", "OFF"])
    def test_disable_values(self, monkeypatch, value):
        monkeypatch.setenv("RHYTHM_CACHE", value)
        assert not cache_enabled()
        assert default_store() is None

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("RHYTHM_CACHE", raising=False)
        assert cache_enabled()

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert resolve_cache_dir() == tmp_path / "elsewhere"
        monkeypatch.delenv("RHYTHM_CACHE", raising=False)
        assert default_store().directory == tmp_path / "elsewhere"

    def test_default_dir_is_home_cache(self, monkeypatch):
        monkeypatch.delenv("RHYTHM_CACHE_DIR", raising=False)
        assert resolve_cache_dir() == Path.home() / ".cache" / "rhythm-repro"

    def test_max_bytes_override(self, monkeypatch):
        monkeypatch.setenv("RHYTHM_CACHE_MAX_BYTES", "1024")
        assert resolve_max_bytes() == 1024
        monkeypatch.setenv("RHYTHM_CACHE_MAX_BYTES", "lots")
        with pytest.raises(CacheError):
            resolve_max_bytes()
        monkeypatch.setenv("RHYTHM_CACHE_MAX_BYTES", "-1")
        with pytest.raises(CacheError):
            resolve_max_bytes()


class TestCellKeys:
    def _task(self, service, default_artifact, **overrides):
        from repro.baselines.heracles import HeraclesPolicy

        cell = GridCell(
            service,
            overrides.get("be_spec", evaluation_be_jobs()[0]),
            overrides.get("load", 0.45),
            seed=overrides.get("seed", 7),
            pattern=overrides.get("pattern"),
        )
        return _CellTask(
            cell=cell,
            artifact=overrides.get("artifact", default_artifact),
            heracles_policy=overrides.get("policy", HeraclesPolicy()),
            config=overrides.get("config"),
        )

    def test_key_is_stable(self, tiny_artifact):
        service, artifact = tiny_artifact
        a = cell_cache_key(self._task(service, artifact))
        b = cell_cache_key(self._task(service, artifact))
        assert a == b

    def test_every_coordinate_matters(self, tiny_artifact):
        service, artifact = tiny_artifact
        base = cell_cache_key(self._task(service, artifact))
        assert base != cell_cache_key(self._task(service, artifact, load=0.46))
        assert base != cell_cache_key(self._task(service, artifact, seed=8))
        assert base != cell_cache_key(
            self._task(service, artifact, be_spec=evaluation_be_jobs()[1])
        )
        assert base != cell_cache_key(
            self._task(service, artifact, config=FAST)
        )

    def test_changed_artifact_invalidates(self, tiny_artifact):
        service, artifact = tiny_artifact
        other = artifact_for(service, seed=1, probe_slacklimits=False)
        assert cell_cache_key(self._task(service, artifact)) != cell_cache_key(
            self._task(service, artifact, artifact=other)
        )

    def test_default_pattern_and_config_normalised(self, tiny_artifact):
        service, artifact = tiny_artifact
        implicit = cell_cache_key(self._task(service, artifact))
        explicit = cell_cache_key(
            self._task(
                service,
                artifact,
                pattern=ConstantLoad(0.45),
                config=ColocationConfig(),
            )
        )
        assert implicit == explicit

    def test_step_pattern_is_cacheable(self, tiny_artifact):
        service, artifact = tiny_artifact
        key = cell_cache_key(
            self._task(service, artifact, pattern=StepLoad([(0.0, 0.3)]))
        )
        assert len(key) == 64

    def test_callable_pattern_is_uncacheable(self, tiny_artifact):
        service, artifact = tiny_artifact
        with pytest.raises(CacheKeyError):
            cell_cache_key(
                self._task(
                    service, artifact, pattern=CallableLoad(lambda t: 0.3)
                )
            )


class TestIncrementalGrid:
    def _cells(self, service):
        return [
            GridCell(service, be, load, seed=7)
            for be in evaluation_be_jobs()[:2]
            for load in (0.25, 0.65)
        ]

    def test_warm_rerun_recomputes_nothing(
        self, tiny_artifact, store, monkeypatch
    ):
        service, artifact = tiny_artifact
        cells = self._cells(service)
        artifacts = {service.name: artifact}
        cold_stats = GridCacheStats()
        cold = run_comparison_grid(
            cells,
            config=FAST,
            workers=1,
            artifacts=artifacts,
            cache=store,
            cache_stats=cold_stats,
        )
        assert cold_stats.misses == len(cells)
        assert cold_stats.hits == 0 and cold_stats.skipped == 0

        def _boom(task):
            raise AssertionError("warm run must not simulate any cell")

        monkeypatch.setattr(grid_module, "_execute_task", _boom)
        warm_stats = GridCacheStats()
        warm = run_comparison_grid(
            cells,
            config=FAST,
            workers=1,
            artifacts=artifacts,
            cache=store,
            cache_stats=warm_stats,
        )
        assert warm_stats.hits == len(cells)
        assert warm_stats.misses == 0 and warm_stats.skipped == 0
        assert [comparison_fingerprint(r) for r in warm] == [
            comparison_fingerprint(r) for r in cold
        ]

    def test_partial_grid_only_runs_new_cells(self, tiny_artifact, store):
        service, artifact = tiny_artifact
        cells = self._cells(service)
        artifacts = {service.name: artifact}
        run_comparison_grid(
            cells[:2], config=FAST, workers=1, artifacts=artifacts, cache=store
        )
        stats = GridCacheStats()
        run_comparison_grid(
            cells,
            config=FAST,
            workers=1,
            artifacts=artifacts,
            cache=store,
            cache_stats=stats,
        )
        assert stats.hits == 2 and stats.misses == 2

    def test_no_store_skips_all(self, tiny_artifact):
        service, artifact = tiny_artifact
        cells = self._cells(service)[:1]
        stats = GridCacheStats()
        run_comparison_grid(
            cells,
            config=FAST,
            workers=1,
            artifacts={service.name: artifact},
            cache=None,
            cache_stats=stats,
        )
        assert stats.skipped == 1 and stats.total == 1

    def test_rhythm_cache_off_bypasses(self, tiny_artifact, monkeypatch):
        service, artifact = tiny_artifact
        monkeypatch.setenv("RHYTHM_CACHE", "off")
        stats = GridCacheStats()
        run_comparison_grid(
            self._cells(service)[:1],
            config=FAST,
            workers=1,
            artifacts={service.name: artifact},
            cache=True,
            cache_stats=stats,
        )
        assert stats.skipped == 1 and stats.hits == 0 and stats.misses == 0

    def test_uncacheable_cell_still_runs(self, tiny_artifact, store):
        service, artifact = tiny_artifact
        cells = [
            GridCell(
                service,
                evaluation_be_jobs()[0],
                0.4,
                seed=3,
                pattern=CallableLoad(lambda t: 0.4),
            )
        ]
        stats = GridCacheStats()
        results = run_comparison_grid(
            cells,
            config=FAST,
            workers=1,
            artifacts={service.name: artifact},
            cache=store,
            cache_stats=stats,
        )
        assert len(results) == 1
        assert stats.skipped == 1
        assert store.stats().entries == 0

    def test_corrupted_cell_entry_recomputes(self, tiny_artifact, store):
        service, artifact = tiny_artifact
        cells = self._cells(service)[:1]
        artifacts = {service.name: artifact}
        run_comparison_grid(
            cells, config=FAST, workers=1, artifacts=artifacts, cache=store
        )
        from repro.baselines.heracles import HeraclesPolicy

        key = cell_cache_key(
            _CellTask(
                cell=cells[0],
                artifact=artifact,
                heracles_policy=HeraclesPolicy(),
                config=FAST,
            )
        )
        store._path(key).write_bytes(b"garbage")
        stats = GridCacheStats()
        results = run_comparison_grid(
            cells,
            config=FAST,
            workers=1,
            artifacts=artifacts,
            cache=store,
            cache_stats=stats,
        )
        assert stats.misses == 1 and len(results) == 1


class TestArtifactCaching:
    def test_warm_profile_skips_probe(self, store, monkeypatch):
        service = make_tiny_service("cached-svc")
        cells = [GridCell(service, evaluation_be_jobs()[0], 0.3, seed=0)]
        clear_rhythm_cache()
        clear_profile_memo()
        first = profile_services(cells, probe_slacklimits=False, cache=store)

        def _boom(*args, **kwargs):
            raise AssertionError("warm profile must come from the store")

        monkeypatch.setattr(profile_module, "run_envelopes", _boom)
        clear_rhythm_cache()
        clear_profile_memo()
        second = profile_services(cells, probe_slacklimits=False, cache=store)
        assert second == first

    def test_profiling_knobs_change_the_key(self, store):
        service = make_tiny_service("keyed-svc")
        cells = [GridCell(service, evaluation_be_jobs()[0], 0.3, seed=0)]
        clear_rhythm_cache()
        clear_profile_memo()
        profile_services(cells, probe_slacklimits=False, cache=store)
        entries = store.stats().entries
        # Sub-profile granularity: one artifact plus one entry per sweep
        # load point.
        assert entries > 1
        clear_rhythm_cache()
        clear_profile_memo()
        profile_services(
            cells,
            probe_slacklimits=False,
            cache=store,
            seed_by_service={service.name: 1},
        )
        # The seed feeds every key — artifact and all load points re-store.
        assert store.stats().entries == 2 * entries


class TestVectorizationIdentityGate:
    """The batched hot path must be bit-identical to the scalar one."""

    @staticmethod
    def _scalar_reference(cls, pod, load, n, rng, slowdown=1.0, sigma_inflation=1.0):
        # Verbatim port of the historical per-component loop.
        total = None
        for comp in pod.components:
            median = cls.component_median_ms(comp, load, slowdown)
            sigma = cls.component_sigma(comp, load, sigma_inflation)
            draws = rng.lognormal(mean=math.log(median), sigma=sigma, size=n)
            total = draws if total is None else total + draws
        assert total is not None
        return total

    def test_colocation_fingerprint_identical(
        self, tiny_artifact, monkeypatch
    ):
        service, artifact = tiny_artifact
        cells = [GridCell(service, evaluation_be_jobs()[0], 0.55, seed=11)]
        artifacts = {service.name: artifact}
        vectorized = run_comparison_grid(
            cells, config=FAST, workers=1, artifacts=artifacts
        )
        monkeypatch.setattr(
            LatencyModel,
            "sample_servpod_ms",
            classmethod(self._scalar_reference),
        )
        scalar = run_comparison_grid(
            cells, config=FAST, workers=1, artifacts=artifacts
        )
        assert comparison_fingerprint(vectorized[0]) == comparison_fingerprint(
            scalar[0]
        )
