"""Tests for component/service specs and call trees."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads.spec import (
    CallNode,
    ComponentSpec,
    RequestType,
    ServiceSpec,
    ServpodSpec,
    chain,
    fanout,
)

from conftest import make_fanout_service, make_tiny_service


class TestComponentSpec:
    def test_valid_component(self):
        comp = ComponentSpec(name="x", base_ms=5.0)
        assert comp.base_ms == 5.0

    def test_rejects_bad_base(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec(name="x", base_ms=0.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec(name="x", base_ms=1.0, sigma0=0.0)

    def test_rejects_bad_knee(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec(name="x", base_ms=1.0, cov_knee=1.0)

    def test_rejects_negative_growth(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec(name="x", base_ms=1.0, lin_growth=-0.1)

    def test_rejects_util_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec(name="x", base_ms=1.0, peak_core_util=1.5)


class TestServpodSpec:
    def test_cores_sum(self):
        pod = ServpodSpec(
            "p",
            (ComponentSpec(name="a", base_ms=1.0, cores=3),
             ComponentSpec(name="b", base_ms=1.0, cores=5)),
        )
        assert pod.cores == 8

    def test_component_lookup(self):
        pod = ServpodSpec("p", (ComponentSpec(name="a", base_ms=1.0),))
        assert pod.component("a").name == "a"
        with pytest.raises(ConfigurationError):
            pod.component("b")

    def test_empty_pod_rejected(self):
        with pytest.raises(ConfigurationError):
            ServpodSpec("p", ())

    def test_duplicate_components_rejected(self):
        comp = ComponentSpec(name="a", base_ms=1.0)
        with pytest.raises(ConfigurationError):
            ServpodSpec("p", (comp, comp))


class TestCallTrees:
    def test_chain_structure(self):
        root = chain("a", "b", "c")
        assert root.servpod == "a"
        assert root.children[0].servpod == "b"
        assert root.children[0].children[0].servpod == "c"
        assert not root.parallel

    def test_chain_needs_one(self):
        with pytest.raises(ConfigurationError):
            chain()

    def test_fanout_structure(self):
        root = fanout("m", chain("s1"), chain("s2"))
        assert root.parallel
        assert {c.servpod for c in root.children} == {"s1", "s2"}

    def test_fanout_needs_branch(self):
        with pytest.raises(ConfigurationError):
            fanout("m")

    def test_servpods_enumeration(self):
        root = fanout("m", chain("a", "b"), chain("c"))
        assert sorted(root.servpods()) == ["a", "b", "c", "m"]


class TestServiceSpec:
    def test_tiny_service_valid(self):
        spec = make_tiny_service()
        assert spec.servpod_names == ["front", "back"]

    def test_servpod_lookup(self):
        spec = make_tiny_service()
        assert spec.servpod("back").name == "back"
        with pytest.raises(ConfigurationError):
            spec.servpod("middle")

    def test_unknown_servpod_in_path_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec(
                name="bad",
                domain="d",
                servpods=(ServpodSpec("a", (ComponentSpec(name="c", base_ms=1.0),)),),
                request_types=(RequestType("r", 1.0, chain("a", "ghost")),),
                max_load_qps=100.0,
                sla_ms=10.0,
            )

    def test_duplicate_servpods_rejected(self):
        pod = ServpodSpec("a", (ComponentSpec(name="c", base_ms=1.0),))
        with pytest.raises(ConfigurationError):
            ServiceSpec(
                name="bad", domain="d", servpods=(pod, pod),
                request_types=(RequestType("r", 1.0, chain("a")),),
                max_load_qps=100.0, sla_ms=10.0,
            )

    def test_weights_normalize(self):
        spec = make_fanout_service()
        weights = spec.normalized_weights()
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_zero_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestType("r", 0.0, CallNode("a"))

    def test_bad_sla_rejected(self):
        pod = ServpodSpec("a", (ComponentSpec(name="c", base_ms=1.0),))
        with pytest.raises(ConfigurationError):
            ServiceSpec(
                name="bad", domain="d", servpods=(pod,),
                request_types=(RequestType("r", 1.0, chain("a")),),
                max_load_qps=100.0, sla_ms=0.0,
            )

    def test_tail_percentile_range(self):
        pod = ServpodSpec("a", (ComponentSpec(name="c", base_ms=1.0),))
        with pytest.raises(ConfigurationError):
            ServiceSpec(
                name="bad", domain="d", servpods=(pod,),
                request_types=(RequestType("r", 1.0, chain("a")),),
                max_load_qps=100.0, sla_ms=10.0, tail_percentile=100.0,
            )
