"""Parallel grid engine, streaming kernels, and their determinism.

Covers the issue's acceptance criteria:

- same-seed serial and parallel grid runs produce bit-identical
  ``ColocationResult`` fingerprints (down to individual tick samples),
- ``HistogramTailTracker`` quantile error vs the exact percentile is
  bounded on heavy-tailed samples,
- Welford streaming statistics match the naive two-pass computation.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.bejobs.catalog import evaluation_be_jobs
from repro.errors import ConfigurationError, ExperimentError, ProfilingError
from repro.experiments.colocation import ColocationConfig
from repro.experiments.runner import clear_rhythm_cache, get_rhythm
from repro.metrics.percentile import (
    HistogramTailTracker,
    ReservoirSampler,
    WindowedTailTracker,
    percentile,
)
from repro.metrics.streaming import WelfordAccumulator
from repro.parallel import (
    GridCell,
    RhythmArtifact,
    artifact_for,
    comparison_fingerprint,
    derive_cell_seed,
    profile_services,
    resolve_workers,
    run_comparison_grid,
)
from repro.parallel.profile import clear_profile_memo
from conftest import make_tiny_service


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_rhythm_cache()
    clear_profile_memo()
    yield
    clear_rhythm_cache()
    clear_profile_memo()


@pytest.fixture(scope="module")
def tiny_artifact():
    service = make_tiny_service()
    return service, artifact_for(service, seed=0, probe_slacklimits=False)


FAST = ColocationConfig(duration_s=20.0, sample_cap=150, min_samples=50)


class TestRhythmArtifact:
    def test_matches_live_pipeline(self, tiny_artifact):
        service, artifact = tiny_artifact
        rhythm = get_rhythm(service, seed=0, probe_slacklimits=False)
        assert artifact.service_name == service.name
        assert artifact.loadlimit_map() == rhythm.loadlimits()
        assert artifact.slacklimit_map() == rhythm.slacklimits()
        assert set(artifact.contribution_map()) == set(service.servpod_names)

    def test_controllers_equal_rhythm_controllers(self, tiny_artifact):
        service, artifact = tiny_artifact
        rhythm = get_rhythm(service, seed=0, probe_slacklimits=False)
        built = artifact.controllers()
        live = rhythm.controllers()
        assert set(built) == set(live)
        for pod in built:
            assert built[pod].thresholds == live[pod].thresholds
            assert built[pod].sla_ms == live[pod].sla_ms

    def test_pickle_roundtrip(self, tiny_artifact):
        _, artifact = tiny_artifact
        clone = pickle.loads(pickle.dumps(artifact))
        assert clone == artifact
        assert clone.controllers().keys() == artifact.controllers().keys()

    def test_rejects_incomplete_tables(self, tiny_artifact):
        service, artifact = tiny_artifact
        with pytest.raises(ProfilingError):
            RhythmArtifact(
                service_name=service.name,
                sla_ms=service.sla_ms,
                servpod_names=tuple(service.servpod_names),
                loadlimits=artifact.loadlimits[:1],
                slacklimits=artifact.slacklimits,
                contributions=artifact.contributions,
            )

    def test_unknown_servpod_rejected(self, tiny_artifact):
        _, artifact = tiny_artifact
        with pytest.raises(ProfilingError):
            artifact.thresholds("nonexistent")


class TestParallelGridDeterminism:
    def _cells(self, service):
        return [
            GridCell(service, be, load, seed=7)
            for be in evaluation_be_jobs()[:2]
            for load in (0.25, 0.65)
        ]

    def test_pool_matches_serial_bit_identically(self, tiny_artifact):
        service, artifact = tiny_artifact
        cells = self._cells(service)
        artifacts = {service.name: artifact}
        serial = run_comparison_grid(
            cells, config=FAST, workers=1, artifacts=artifacts
        )
        pooled = run_comparison_grid(
            cells, config=FAST, workers=2, artifacts=artifacts
        )
        assert [comparison_fingerprint(r) for r in serial] == [
            comparison_fingerprint(r) for r in pooled
        ]

    def test_results_in_input_order(self, tiny_artifact):
        service, artifact = tiny_artifact
        cells = self._cells(service)
        results = run_comparison_grid(
            cells, config=FAST, workers=2, artifacts={service.name: artifact}
        )
        assert [(r.be_job, r.load) for r in results] == [
            (c.be_spec.name, c.load) for c in cells
        ]

    def test_profiles_once_in_parent(self, tiny_artifact):
        service, _ = tiny_artifact
        cells = self._cells(service)
        artifacts = profile_services(cells, probe_slacklimits=False)
        assert set(artifacts) == {service.name}

    def test_empty_grid(self):
        assert run_comparison_grid([]) == []

    def test_missing_artifact_rejected(self, tiny_artifact):
        service, _ = tiny_artifact
        with pytest.raises(ExperimentError):
            run_comparison_grid(
                self._cells(service), config=FAST, workers=1, artifacts={}
            )


class TestCellSeeds:
    def test_deterministic(self):
        a = derive_cell_seed(0, "Redis", "stream-dram", 0.25)
        b = derive_cell_seed(0, "Redis", "stream-dram", 0.25)
        assert a == b and a >= 0

    def test_distinct_across_coordinates(self):
        seeds = {
            derive_cell_seed(0, svc, be, load)
            for svc in ("Redis", "Solr")
            for be in ("stream-dram", "CPU-stress")
            for load in (0.25, 0.65)
        }
        assert len(seeds) == 8

    def test_root_seed_matters(self):
        assert derive_cell_seed(0, "Redis", "x", 0.5) != derive_cell_seed(
            1, "Redis", "x", 0.5
        )


class TestResolveWorkers:
    def test_explicit_wins(self):
        assert resolve_workers(3) == 3

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("RHYTHM_WORKERS", "5")
        assert resolve_workers() == 5

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("RHYTHM_WORKERS", "many")
        with pytest.raises(ExperimentError):
            resolve_workers()


class TestHistogramTailTracker:
    def test_bounded_error_on_heavy_tail(self):
        rng = np.random.default_rng(42)
        # Lognormal with sigma=1.5: a genuinely heavy upper tail.
        samples = rng.lognormal(mean=3.0, sigma=1.5, size=20_000)
        tracker = HistogramTailTracker(pct=99.0)
        tracker.add_samples(samples)
        estimate = tracker.roll_window()
        exact = percentile(samples, 99.0)
        # Nearest-rank vs interpolated percentile differ by at most one
        # sample's spacing; allow twice the geometric bin bound.
        assert estimate == pytest.approx(exact, rel=2 * tracker.error_bound + 0.01)

    def test_error_bound_matches_geometry(self):
        tracker = HistogramTailTracker(lo_ms=1.0, hi_ms=100.0, bins=100)
        rng = np.random.default_rng(7)
        samples = rng.uniform(1.0, 100.0, size=5_000)
        tracker.add_samples(samples)
        estimate = tracker.roll_window()
        exact = percentile(samples, 99.0)
        assert abs(estimate - exact) / exact <= 2 * tracker.error_bound + 0.01

    def test_scalar_and_batch_insert_agree(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(2.0, 1.0, size=500)
        a = HistogramTailTracker()
        b = HistogramTailTracker()
        a.add_samples(samples)
        for v in samples:
            b.add(v)
        assert a.roll_window() == pytest.approx(b.roll_window())

    def test_window_api_mirrors_windowed_tracker(self):
        tracker = HistogramTailTracker(pct=99.0)
        assert tracker.roll_window() is None
        tracker.add_samples([10.0] * 100)
        first = tracker.roll_window()
        assert first == pytest.approx(10.0, rel=tracker.error_bound + 1e-6)
        tracker.add_samples([100.0] * 100)
        second = tracker.roll_window()
        assert tracker.current_tail == second
        assert tracker.worst_tail == max(first, second)
        assert tracker.window_tails == (first, second)
        assert tracker.violation_count(first + 1e-9) == 1

    def test_overflow_reports_window_max(self):
        tracker = HistogramTailTracker(lo_ms=1.0, hi_ms=10.0, bins=8)
        tracker.add_samples([5.0] * 10 + [5000.0] * 90)
        assert tracker.roll_window() == pytest.approx(5000.0)

    def test_record_window_tail_o1_path(self):
        tracker = HistogramTailTracker()
        tracker.record_window_tail(12.5)
        assert tracker.worst_tail == 12.5
        assert tracker.window_tails == (12.5,)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HistogramTailTracker(pct=0.0)
        with pytest.raises(ConfigurationError):
            HistogramTailTracker(lo_ms=5.0, hi_ms=1.0)
        with pytest.raises(ConfigurationError):
            HistogramTailTracker(bins=1)


class TestWelford:
    def test_matches_two_pass(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(1.0, 0.8, size=4_097)
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        mean = float(np.mean(values))
        var = float(np.var(values, ddof=1))
        assert acc.count == values.size
        assert acc.mean == pytest.approx(mean, rel=1e-12)
        assert acc.variance() == pytest.approx(var, rel=1e-9)
        assert acc.std() == pytest.approx(np.std(values, ddof=1), rel=1e-9)

    def test_add_many_matches_add_loop(self):
        rng = np.random.default_rng(12)
        values = rng.normal(50.0, 9.0, size=1_000)
        a, b = WelfordAccumulator(), WelfordAccumulator()
        a.add_many(values)
        for v in values:
            b.add(v)
        assert a.mean == pytest.approx(b.mean, rel=1e-12)
        assert a.variance() == pytest.approx(b.variance(), rel=1e-9)

    def test_merge_equals_concatenation(self):
        rng = np.random.default_rng(13)
        left = rng.uniform(0, 10, size=300)
        right = rng.uniform(5, 50, size=700)
        a, b = WelfordAccumulator(), WelfordAccumulator()
        a.add_many(left)
        b.add_many(right)
        a.merge(b)
        both = np.concatenate([left, right])
        assert a.count == 1000
        assert a.mean == pytest.approx(float(np.mean(both)), rel=1e-12)
        assert a.variance() == pytest.approx(float(np.var(both, ddof=1)), rel=1e-9)

    def test_degenerate_counts(self):
        acc = WelfordAccumulator()
        assert acc.mean == 0.0 and acc.variance() == 0.0 and len(acc) == 0
        acc.add(4.0)
        assert acc.mean == 4.0 and acc.variance() == 0.0
        acc.add_many([])
        assert acc.count == 1


class TestHotPathSatellites:
    def test_reservoir_extend_single_rng_call(self):
        class CountingRng:
            def __init__(self):
                self.calls = 0
                self._rng = np.random.default_rng(0)

            def integers(self, *args, **kwargs):
                self.calls += 1
                return self._rng.integers(*args, **kwargs)

        sampler = ReservoirSampler(capacity=10, seed=0)
        sampler._rng = CountingRng()
        sampler.extend(range(1000))
        assert sampler._rng.calls == 1
        assert sampler.seen == 1000
        assert len(sampler) == 10

    def test_reservoir_extend_fill_phase_is_exact(self):
        sampler = ReservoirSampler(capacity=100, seed=1)
        sampler.extend(float(i) for i in range(50))
        assert sampler.seen == 50
        assert sampler.percentile(50.0) == pytest.approx(24.5)

    def test_reservoir_extend_remains_uniformish(self):
        # After many samples the retained set should span the stream,
        # not cluster at the head (a classic off-by-one failure).
        sampler = ReservoirSampler(capacity=200, seed=2)
        sampler.extend(float(i) for i in range(20_000))
        assert sampler.percentile(50.0) == pytest.approx(10_000, rel=0.25)

    def test_window_tails_returns_tuple(self):
        tracker = WindowedTailTracker()
        tracker.add_samples([1.0, 2.0, 3.0])
        tracker.roll_window()
        tails = tracker.window_tails
        assert isinstance(tails, tuple)

    def test_record_window_tail_matches_roll(self):
        samples = [5.0, 9.0, 1.0, 22.0]
        a, b = WindowedTailTracker(pct=99.0), WindowedTailTracker(pct=99.0)
        a.add_samples(samples)
        rolled = a.roll_window()
        b.record_window_tail(percentile(samples, 99.0))
        assert b.window_tails == (rolled,)
        assert b.worst_tail == a.worst_tail


class TestHistogramEstimatorInColocation:
    def test_histogram_estimator_runs_and_stays_close(self, tiny_artifact):
        service, artifact = tiny_artifact
        cell = [GridCell(service, evaluation_be_jobs()[0], 0.45, seed=0)]
        artifacts = {service.name: artifact}
        exact = run_comparison_grid(
            cell, config=FAST, workers=1, artifacts=artifacts
        )[0]
        approx_cfg = ColocationConfig(
            duration_s=FAST.duration_s,
            sample_cap=FAST.sample_cap,
            min_samples=FAST.min_samples,
            tail_estimator="histogram",
        )
        approx = run_comparison_grid(
            cell, config=approx_cfg, workers=1, artifacts=artifacts
        )[0]
        assert approx.rhythm.worst_tail_ms == pytest.approx(
            exact.rhythm.worst_tail_ms, rel=0.10
        )

    def test_bad_estimator_rejected(self):
        with pytest.raises(ExperimentError):
            ColocationConfig(tail_estimator="sorted")
