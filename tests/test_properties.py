"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.contribution import ContributionAnalyzer, pearson
from repro.core.loadlimit import derive_loadlimit
from repro.core.slacklimit import (
    MIN_SLACKLIMIT,
    find_slacklimits,
    violation_free_fixed_point,
)
from repro.core.actions import BeAction
from repro.core.top_controller import ControllerThresholds, TopController
from repro.interference.model import InterferenceModel, Pressure
from repro.interference.sensitivity import SensitivityVector
from repro.metrics.percentile import WindowedTailTracker, percentile
from repro.sim.events import EventQueue
from repro.tracing.causality import CausalityMatcher
from repro.tracing.emitter import EmitterConfig, TraceEmitter, default_endpoints
from repro.tracing.sojourn import SojournExtractor
from repro.workloads.request import build_execution
from repro.workloads.spec import chain

from conftest import make_tiny_service

fast = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# --- event queue ------------------------------------------------------------

@fast
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_event_queue_pops_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda _t: None)
    popped = []
    while (e := q.pop()) is not None:
        popped.append(e.time)
    assert popped == sorted(times)


# --- percentile / tail tracking ----------------------------------------------

@fast
@given(
    st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=200),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_percentile_within_range(samples, pct):
    value = percentile(samples, pct)
    assert min(samples) <= value <= max(samples)


@fast
@given(st.lists(st.lists(st.floats(min_value=0.1, max_value=100.0),
                         min_size=1, max_size=20), min_size=1, max_size=10))
def test_worst_tail_is_max_of_window_tails(windows):
    tracker = WindowedTailTracker(pct=99.0)
    for window in windows:
        tracker.add_samples(window)
        tracker.roll_window()
    assert tracker.worst_tail == pytest.approx(max(tracker.window_tails))


# --- contribution math --------------------------------------------------------

@fast
@given(st.lists(st.tuples(st.floats(min_value=0.1, max_value=100.0),
                          st.floats(min_value=0.1, max_value=100.0)),
                min_size=2, max_size=30))
def test_pearson_bounded(pairs):
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    r = pearson(xs, ys)
    assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


@fast
@given(
    st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=3, max_size=12),
    st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=3, max_size=12),
)
def test_contributions_nonnegative_and_normalizable(front, back):
    m = min(len(front), len(back))
    front, back = front[:m], back[:m]
    tails = [f + b + 1.0 for f, b in zip(front, back)]
    analyzer = ContributionAnalyzer(make_tiny_service())
    result = analyzer.analyze({"front": front, "back": back}, tails)
    values = [c.contribution for c in result.contributions.values()]
    assert all(v >= 0 for v in values)
    if sum(values) > 0:
        assert sum(result.normalized().values()) == pytest.approx(1.0)


# --- loadlimit -----------------------------------------------------------------

@fast
@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=3, max_size=50))
def test_loadlimit_is_a_sweep_point(covs):
    loads = [round((i + 1) / (len(covs) + 1), 6) for i in range(len(covs))]
    limit = derive_loadlimit(loads, covs, smoothing_window=1)
    assert limit in loads


# --- slacklimit (Algorithm 1) -----------------------------------------------------

@fast
@given(st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.floats(min_value=0.01, max_value=10.0),
    min_size=1, max_size=4,
))
def test_fixed_point_in_unit_interval(contributions):
    limits = violation_free_fixed_point(contributions)
    assert set(limits) == set(contributions)
    for value in limits.values():
        assert MIN_SLACKLIMIT <= value <= 1.0


@fast
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.floats(min_value=0.05, max_value=5.0),
        min_size=2, max_size=3,
    ),
    st.integers(min_value=0, max_value=5),
)
def test_algorithm1_result_never_below_floor(contributions, violate_after):
    calls = [0]

    def probe(cfg):
        calls[0] += 1
        return calls[0] > violate_after

    limits = find_slacklimits(contributions, probe)
    for value in limits.values():
        assert MIN_SLACKLIMIT <= value <= 1.0


# --- Algorithm 2 totality -------------------------------------------------------

@fast
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=500.0),
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_algorithm2_total_function(load, tail, loadlimit, slacklimit):
    ctrl = TopController(
        "p", ControllerThresholds(loadlimit, slacklimit), sla_ms=100.0
    )
    action = ctrl.decide(load, tail)
    assert isinstance(action, BeAction)
    # Safety: an SLA violation always stops BE jobs.
    if tail > 100.0:
        assert action == BeAction.STOP_BE


# --- interference model ----------------------------------------------------------

@fast
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=3.0),
)
def test_slowdown_at_least_one_and_monotone_in_pressure(p_low, load, sens):
    p_high = min(1.0, p_low + 0.3)
    model = InterferenceModel()
    vector = SensitivityVector(membw=sens)
    low = model.slowdown(vector, Pressure(membw=p_low), load)
    high = model.slowdown(vector, Pressure(membw=p_high), load)
    assert 1.0 <= low <= high


# --- request execution --------------------------------------------------------

@fast
@given(st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=6))
def test_chain_e2e_equals_sum_of_sojourns_plus_hops(sojourns):
    pods = [f"p{i}" for i in range(len(sojourns))]
    table = dict(zip(pods, sojourns))
    record = build_execution(chain(*pods), table.__getitem__, hop_ms=0.0)
    assert record.e2e_ms == pytest.approx(sum(sojourns))
    assert record.sojourn_by_servpod() == pytest.approx(table)


# --- tracer mean preservation ---------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.booleans(), st.booleans(), st.integers(min_value=0, max_value=2**16))
def test_tracer_means_survive_any_emitter_mode(blocking, persistent, seed):
    """Mean sojourns are exact whatever the pairing ambiguity."""
    from repro.sim.rng import RandomStreams
    from repro.workloads.service import Service

    spec = make_tiny_service()
    svc = Service(spec, RandomStreams(seed % 97))
    records = svc.build_request_records(0.5, 60)
    truth = {}
    for r in records:
        for pod, s in r.sojourn_by_servpod().items():
            truth.setdefault(pod, []).append(s)
    endpoints = default_endpoints(spec.servpod_names)
    emitter = TraceEmitter(
        endpoints,
        EmitterConfig(blocking=blocking, persistent_connections=persistent,
                      noise_per_request=2.0, seed=seed),
    )
    events = emitter.emit(records)
    stats = SojournExtractor(CausalityMatcher(endpoints)).mean_only(events)
    for pod, stat in stats.items():
        assert stat.mean_ms == pytest.approx(float(np.mean(truth[pod])), rel=0.05)
