"""Property-based tests on core invariants.

Two generator styles live here: hypothesis strategies for the original
control-plane invariants, and hand-rolled seeded numpy generators for
the streaming-statistics layer (``repro.metrics``) — the latter so the
exact sample streams are reproducible from the parametrized seed alone,
with no example database or shrinking in the way of a bisect.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.contribution import ContributionAnalyzer, pearson
from repro.core.loadlimit import derive_loadlimit
from repro.core.slacklimit import (
    MIN_SLACKLIMIT,
    find_slacklimits,
    violation_free_fixed_point,
)
from repro.core.actions import BeAction
from repro.core.top_controller import ControllerThresholds, TopController
from repro.interference.model import InterferenceModel, Pressure
from repro.interference.sensitivity import SensitivityVector
from repro.metrics.percentile import (
    HistogramTailTracker,
    WindowedTailTracker,
    percentile,
)
from repro.metrics.streaming import WelfordAccumulator
from repro.sim.events import EventQueue
from repro.tracing.causality import CausalityMatcher
from repro.tracing.emitter import EmitterConfig, TraceEmitter, default_endpoints
from repro.tracing.sojourn import SojournExtractor
from repro.workloads.request import build_execution
from repro.workloads.spec import chain

from conftest import make_tiny_service

fast = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# --- event queue ------------------------------------------------------------

@fast
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_event_queue_pops_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda _t: None)
    popped = []
    while (e := q.pop()) is not None:
        popped.append(e.time)
    assert popped == sorted(times)


# --- percentile / tail tracking ----------------------------------------------

@fast
@given(
    st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=200),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_percentile_within_range(samples, pct):
    value = percentile(samples, pct)
    assert min(samples) <= value <= max(samples)


@fast
@given(st.lists(st.lists(st.floats(min_value=0.1, max_value=100.0),
                         min_size=1, max_size=20), min_size=1, max_size=10))
def test_worst_tail_is_max_of_window_tails(windows):
    tracker = WindowedTailTracker(pct=99.0)
    for window in windows:
        tracker.add_samples(window)
        tracker.roll_window()
    assert tracker.worst_tail == pytest.approx(max(tracker.window_tails))


# --- contribution math --------------------------------------------------------

@fast
@given(st.lists(st.tuples(st.floats(min_value=0.1, max_value=100.0),
                          st.floats(min_value=0.1, max_value=100.0)),
                min_size=2, max_size=30))
def test_pearson_bounded(pairs):
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    r = pearson(xs, ys)
    assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


@fast
@given(
    st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=3, max_size=12),
    st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=3, max_size=12),
)
def test_contributions_nonnegative_and_normalizable(front, back):
    m = min(len(front), len(back))
    front, back = front[:m], back[:m]
    tails = [f + b + 1.0 for f, b in zip(front, back)]
    analyzer = ContributionAnalyzer(make_tiny_service())
    result = analyzer.analyze({"front": front, "back": back}, tails)
    values = [c.contribution for c in result.contributions.values()]
    assert all(v >= 0 for v in values)
    if sum(values) > 0:
        assert sum(result.normalized().values()) == pytest.approx(1.0)


# --- loadlimit -----------------------------------------------------------------

@fast
@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=3, max_size=50))
def test_loadlimit_is_a_sweep_point(covs):
    loads = [round((i + 1) / (len(covs) + 1), 6) for i in range(len(covs))]
    limit = derive_loadlimit(loads, covs, smoothing_window=1)
    assert limit in loads


# --- slacklimit (Algorithm 1) -----------------------------------------------------

@fast
@given(st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.floats(min_value=0.01, max_value=10.0),
    min_size=1, max_size=4,
))
def test_fixed_point_in_unit_interval(contributions):
    limits = violation_free_fixed_point(contributions)
    assert set(limits) == set(contributions)
    for value in limits.values():
        assert MIN_SLACKLIMIT <= value <= 1.0


@fast
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.floats(min_value=0.05, max_value=5.0),
        min_size=2, max_size=3,
    ),
    st.integers(min_value=0, max_value=5),
)
def test_algorithm1_result_never_below_floor(contributions, violate_after):
    calls = [0]

    def probe(cfg):
        calls[0] += 1
        return calls[0] > violate_after

    limits = find_slacklimits(contributions, probe)
    for value in limits.values():
        assert MIN_SLACKLIMIT <= value <= 1.0


# --- Algorithm 2 totality -------------------------------------------------------

@fast
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=500.0),
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_algorithm2_total_function(load, tail, loadlimit, slacklimit):
    ctrl = TopController(
        "p", ControllerThresholds(loadlimit, slacklimit), sla_ms=100.0
    )
    action = ctrl.decide(load, tail)
    assert isinstance(action, BeAction)
    # Safety: an SLA violation always stops BE jobs.
    if tail > 100.0:
        assert action == BeAction.STOP_BE


# --- interference model ----------------------------------------------------------

@fast
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=3.0),
)
def test_slowdown_at_least_one_and_monotone_in_pressure(p_low, load, sens):
    p_high = min(1.0, p_low + 0.3)
    model = InterferenceModel()
    vector = SensitivityVector(membw=sens)
    low = model.slowdown(vector, Pressure(membw=p_low), load)
    high = model.slowdown(vector, Pressure(membw=p_high), load)
    assert 1.0 <= low <= high


# --- request execution --------------------------------------------------------

@fast
@given(st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=6))
def test_chain_e2e_equals_sum_of_sojourns_plus_hops(sojourns):
    pods = [f"p{i}" for i in range(len(sojourns))]
    table = dict(zip(pods, sojourns))
    record = build_execution(chain(*pods), table.__getitem__, hop_ms=0.0)
    assert record.e2e_ms == pytest.approx(sum(sojourns))
    assert record.sojourn_by_servpod() == pytest.approx(table)


# --- tracer mean preservation ---------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.booleans(), st.booleans(), st.integers(min_value=0, max_value=2**16))
def test_tracer_means_survive_any_emitter_mode(blocking, persistent, seed):
    """Mean sojourns are exact whatever the pairing ambiguity."""
    from repro.sim.rng import RandomStreams
    from repro.workloads.service import Service

    spec = make_tiny_service()
    svc = Service(spec, RandomStreams(seed % 97))
    records = svc.build_request_records(0.5, 60)
    truth = {}
    for r in records:
        for pod, s in r.sojourn_by_servpod().items():
            truth.setdefault(pod, []).append(s)
    endpoints = default_endpoints(spec.servpod_names)
    emitter = TraceEmitter(
        endpoints,
        EmitterConfig(blocking=blocking, persistent_connections=persistent,
                      noise_per_request=2.0, seed=seed),
    )
    events = emitter.emit(records)
    stats = SojournExtractor(CausalityMatcher(endpoints)).mean_only(events)
    for pod, stat in stats.items():
        assert stat.mean_ms == pytest.approx(float(np.mean(truth[pod])), rel=0.05)


# --- streaming moments (hand-rolled seeded generators) ------------------------
#
# The distributions deliberately stress the numerics: uniform (benign),
# lognormal (skewed, like latency), "tiny" (~1e-9 scale, catastrophic
# cancellation territory for naive sum-of-squares) and "huge" (~1e9
# scale with a small spread, where the two-pass formula would lose all
# precision). Welford + Chan must agree with numpy's two-pass reference
# on all of them.

_WELFORD_DISTRIBUTIONS = ("uniform", "lognormal", "tiny", "huge")


def _draw_samples(rng: np.random.Generator, distribution: str) -> np.ndarray:
    n = int(rng.integers(2, 400))
    if distribution == "uniform":
        return rng.uniform(-50.0, 50.0, size=n)
    if distribution == "lognormal":
        return rng.lognormal(mean=1.0, sigma=1.5, size=n)
    if distribution == "tiny":
        return rng.uniform(1e-9, 5e-9, size=n)
    if distribution == "huge":
        return 1e9 + rng.uniform(0.0, 10.0, size=n)
    raise AssertionError(distribution)


def _assert_matches_numpy(acc: WelfordAccumulator, arr: np.ndarray) -> None:
    assert acc.count == arr.size
    assert acc.mean == pytest.approx(float(np.mean(arr)), rel=1e-9, abs=1e-12)
    ref_var = float(np.var(arr, ddof=1)) if arr.size > 1 else 0.0
    assert acc.variance(ddof=1) == pytest.approx(ref_var, rel=1e-6, abs=1e-18)
    assert acc.std(ddof=1) == pytest.approx(math.sqrt(ref_var), rel=1e-6, abs=1e-18)


class TestWelfordProperties:
    """Welford/Chan accumulators vs numpy two-pass references."""

    @pytest.mark.parametrize("distribution", _WELFORD_DISTRIBUTIONS)
    @pytest.mark.parametrize("seed", range(6))
    def test_sequential_add_matches_numpy(self, seed, distribution):
        rng = np.random.default_rng(1000 * seed + 17)
        arr = _draw_samples(rng, distribution)
        acc = WelfordAccumulator()
        for value in arr:
            acc.add(float(value))
        _assert_matches_numpy(acc, arr)

    @pytest.mark.parametrize("distribution", _WELFORD_DISTRIBUTIONS)
    @pytest.mark.parametrize("seed", range(6))
    def test_add_many_matches_sequential(self, seed, distribution):
        rng = np.random.default_rng(2000 * seed + 29)
        arr = _draw_samples(rng, distribution)
        batched = WelfordAccumulator()
        # Random batch boundaries so the Chan combine runs at odd sizes.
        cuts = np.sort(rng.integers(0, arr.size + 1, size=int(rng.integers(0, 5))))
        for chunk in np.split(arr, cuts):
            batched.add_many(chunk)
        _assert_matches_numpy(batched, arr)

    @pytest.mark.parametrize("shards", [2, 3, 7])
    @pytest.mark.parametrize("seed", range(4))
    def test_merge_of_shards_matches_whole(self, seed, shards):
        rng = np.random.default_rng(3000 * seed + 31)
        arr = rng.lognormal(mean=0.5, sigma=1.0, size=int(rng.integers(shards, 500)))
        parts = np.array_split(arr, shards)
        accs = []
        for part in parts:
            acc = WelfordAccumulator()
            acc.add_many(part)
            accs.append(acc)
        merged = accs[0]
        for other in accs[1:]:
            merged.merge(other)
        _assert_matches_numpy(merged, arr)

    @pytest.mark.parametrize("seed", range(4))
    def test_merge_order_invariant(self, seed):
        rng = np.random.default_rng(4000 * seed + 37)
        arr = rng.uniform(0.0, 100.0, size=60)
        parts = np.array_split(arr, 4)

        def fold(order):
            acc = WelfordAccumulator()
            for i in order:
                shard = WelfordAccumulator()
                shard.add_many(parts[i])
                acc.merge(shard)
            return acc

        forward = fold([0, 1, 2, 3])
        backward = fold([3, 2, 1, 0])
        assert forward.mean == pytest.approx(backward.mean, rel=1e-12)
        assert forward.variance() == pytest.approx(backward.variance(), rel=1e-9)

    def test_degenerate_inputs(self):
        acc = WelfordAccumulator()
        acc.add_many([])  # no-op
        assert acc.count == 0 and acc.mean == 0.0 and acc.variance() == 0.0
        acc.add(3.5)
        assert acc.count == 1
        assert acc.mean == pytest.approx(3.5)
        assert acc.variance(ddof=1) == 0.0  # below ddof + 1 samples
        empty = WelfordAccumulator()
        acc.merge(empty)  # merging an empty accumulator changes nothing
        assert acc.count == 1 and acc.mean == pytest.approx(3.5)


# --- histogram tail tracker (hand-rolled seeded generators) -------------------


def _nearest_rank(samples: np.ndarray, pct: float) -> float:
    """The exact nearest-rank percentile the histogram approximates."""
    rank = max(1, int(math.ceil(pct / 100.0 * samples.size)))
    return float(np.sort(samples)[rank - 1])


class TestHistogramTailProperties:
    """HistogramTailTracker vs exact nearest-rank references."""

    @pytest.mark.parametrize("pct", [50.0, 90.0, 99.0])
    @pytest.mark.parametrize("seed", range(8))
    def test_in_range_estimate_within_error_bound(self, seed, pct):
        rng = np.random.default_rng(5000 * seed + 41)
        tracker = HistogramTailTracker(pct=pct)
        n = int(rng.integers(5, 2000))
        # Log-uniform strictly inside (lo_ms, hi_ms): every sample lands
        # in a regular bin, so the geometric-midpoint bound applies.
        log_lo = math.log(tracker.lo_ms * 1.01)
        log_hi = math.log(tracker.hi_ms * 0.99)
        samples = np.exp(rng.uniform(log_lo, log_hi, size=n))
        tracker.add_samples(samples)
        estimate = tracker.roll_window()
        exact = _nearest_rank(samples, pct)
        # 1.0001 absorbs float rounding at bin boundaries.
        assert abs(estimate - exact) / exact <= tracker.error_bound * 1.0001

    @pytest.mark.parametrize("seed", range(6))
    def test_add_and_add_samples_agree(self, seed):
        rng = np.random.default_rng(6000 * seed + 43)
        samples = np.exp(rng.uniform(math.log(0.1), math.log(1e4), size=300))
        one_by_one = HistogramTailTracker()
        for value in samples:
            one_by_one.add(float(value))
        batched = HistogramTailTracker()
        batched.add_samples(samples)
        assert one_by_one.roll_window() == pytest.approx(batched.roll_window())

    @pytest.mark.parametrize("seed", range(4))
    def test_overflow_bucket_reports_exact_window_max(self, seed):
        rng = np.random.default_rng(7000 * seed + 47)
        tracker = HistogramTailTracker(pct=99.0, lo_ms=0.1, hi_ms=10.0, bins=16)
        # Mostly-overflowing window: the 99th-percentile rank falls in
        # the overflow bucket, whose quantile is the exact maximum.
        samples = rng.uniform(20.0, 500.0, size=200)
        tracker.add_samples(samples)
        assert tracker.roll_window() == pytest.approx(float(samples.max()))

    @pytest.mark.parametrize("seed", range(4))
    def test_worst_tail_and_violations_track_windows(self, seed):
        rng = np.random.default_rng(8000 * seed + 53)
        tracker = HistogramTailTracker(pct=95.0)
        for _ in range(int(rng.integers(2, 8))):
            tracker.add_samples(np.exp(rng.uniform(0.0, 6.0, size=50)))
            tracker.roll_window()
        tails = tracker.window_tails
        assert tracker.worst_tail == pytest.approx(max(tails))
        sla = float(np.median(tails))
        assert tracker.violation_count(sla) == sum(1 for t in tails if t > sla)

    def test_error_bound_matches_bin_geometry(self):
        tracker = HistogramTailTracker()  # lo=1e-2, hi=1e5, bins=512
        expected = math.sqrt(tracker.hi_ms / tracker.lo_ms) ** (1.0 / 512) - 1.0
        assert tracker.error_bound == pytest.approx(expected, rel=1e-9)
        assert tracker.error_bound < 0.017  # ~1.6% with the defaults

    def test_empty_window_rolls_to_none(self):
        tracker = HistogramTailTracker()
        assert tracker.roll_window() is None
        assert tracker.worst_tail is None and tracker.window_tails == ()


class TestStormExpansionPurity:
    """The correlated-storm expansion is a pure function of (seed, topology).

    ``storm_schedule_probe`` canonicalises a generated topology, its
    event schedule, and the full per-instance expansion into one repr
    string; equal strings mean byte-identical schedules. The battery:
    50 seeded topologies recomputed in-process, reproduced by fork-
    started children, by spawn-started children (slow), and under
    different ``PYTHONHASHSEED`` values.
    """

    def test_fifty_seeded_topologies_fork_identical(self):
        import multiprocessing

        from repro.experiments.scenarios import storm_schedule_probe

        parent = [storm_schedule_probe(seed) for seed in range(50)]
        assert parent == [storm_schedule_probe(seed) for seed in range(50)]
        assert len(set(parent)) == 50, "distinct seeds must give distinct storms"
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            children = pool.map(storm_schedule_probe, range(50))
        assert children == parent

    @pytest.mark.slow
    def test_spawn_children_reproduce_schedules(self):
        import multiprocessing

        from repro.experiments.scenarios import storm_schedule_probe

        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            children = pool.map(storm_schedule_probe, range(10))
        assert children == [storm_schedule_probe(seed) for seed in range(10)]

    def test_expansion_survives_hash_randomization(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        script = (
            "import hashlib;"
            "from repro.experiments.scenarios import storm_schedule_probe;"
            "blob = ''.join(storm_schedule_probe(s) for s in range(5));"
            "print(hashlib.sha256(blob.encode()).hexdigest())"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        outs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.append(proc.stdout.strip())
        assert outs[0] == outs[1]

    @given(
        seed=st.integers(0, 10_000),
        n_instances=st.integers(1, 64),
        zone_size=st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_probe_total_for_arbitrary_shapes(self, seed, n_instances, zone_size):
        from repro.experiments.scenarios import storm_schedule_probe

        first = storm_schedule_probe(
            seed, n_instances=n_instances, zone_size=zone_size
        )
        again = storm_schedule_probe(
            seed, n_instances=n_instances, zone_size=zone_size
        )
        assert first == again
