"""Tests for Algorithm 2 (top controller) and the subcontrollers."""

from __future__ import annotations

import pytest

from repro.bejobs.catalog import CPU_STRESS, STREAM_DRAM
from repro.bejobs.job import BeJobState
from repro.cluster.machine import BE_DOMAIN, Machine, MachineSpec
from repro.core.actions import BeAction
from repro.core.subcontrollers import (
    BeJobPool,
    CpuLlcSubcontroller,
    FrequencySubcontroller,
    MemorySubcontroller,
    NetworkSubcontroller,
)
from repro.core.top_controller import ControllerThresholds, TopController
from repro.errors import ControlError


@pytest.fixture
def controller() -> TopController:
    return TopController(
        servpod="mysql",
        thresholds=ControllerThresholds(loadlimit=0.76, slacklimit=0.4),
        sla_ms=100.0,
    )


class TestAlgorithm2:
    def test_violation_stops_be(self, controller):
        assert controller.decide(load=0.5, tail_ms=120.0) == BeAction.STOP_BE

    def test_loadlimit_suspends(self, controller):
        assert controller.decide(load=0.8, tail_ms=10.0) == BeAction.SUSPEND_BE

    def test_load_at_limit_does_not_suspend_by_default(self, controller):
        assert controller.decide(load=0.76, tail_ms=10.0) != BeAction.SUSPEND_BE

    def test_heracles_mode_suspends_at_limit(self):
        heracles = TopController(
            "any", ControllerThresholds(0.85, 0.10), sla_ms=100.0,
            suspend_on_load_at_or_above=True,
        )
        assert heracles.decide(load=0.85, tail_ms=10.0) == BeAction.SUSPEND_BE

    def test_cut_band(self, controller):
        # slack in (0, slacklimit/2) = (0, 0.2): tail in (80, 100)
        assert controller.decide(load=0.5, tail_ms=90.0) == BeAction.CUT_BE

    def test_disallow_band(self, controller):
        # slack in (0.2, 0.4): tail in (60, 80)
        assert controller.decide(load=0.5, tail_ms=70.0) == BeAction.DISALLOW_BE_GROWTH

    def test_allow_band(self, controller):
        # slack > 0.4: tail < 60
        assert controller.decide(load=0.5, tail_ms=30.0) == BeAction.ALLOW_BE_GROWTH

    def test_violation_takes_precedence_over_loadlimit(self, controller):
        assert controller.decide(load=0.99, tail_ms=150.0) == BeAction.STOP_BE

    def test_history_recorded_with_time(self, controller):
        controller.decide(0.5, 30.0, t=2.0)
        controller.decide(0.5, 120.0, t=4.0)
        assert [a for _, a in controller.history] == [
            BeAction.ALLOW_BE_GROWTH, BeAction.STOP_BE,
        ]
        counts = controller.action_counts()
        assert counts[BeAction.STOP_BE] == 1

    def test_negative_load_rejected(self, controller):
        with pytest.raises(ControlError):
            controller.decide(-0.1, 10.0)

    def test_threshold_validation(self):
        with pytest.raises(ControlError):
            ControllerThresholds(loadlimit=0.0, slacklimit=0.5)
        with pytest.raises(ControlError):
            ControllerThresholds(loadlimit=0.5, slacklimit=1.5)

    def test_action_severity_ordering(self):
        assert BeAction.STOP_BE.harsher_than(BeAction.SUSPEND_BE)
        assert BeAction.SUSPEND_BE.harsher_than(BeAction.CUT_BE)
        assert BeAction.CUT_BE.harsher_than(BeAction.DISALLOW_BE_GROWTH)
        assert BeAction.DISALLOW_BE_GROWTH.harsher_than(BeAction.ALLOW_BE_GROWTH)


@pytest.fixture
def rig():
    machine = Machine(MachineSpec(name="m0"))
    machine.reserve_lc(cores=12, llc_ways=10, memory_gb=64.0)
    pool = BeJobPool([CPU_STRESS], "m0", max_instances=4)
    return machine, pool, CpuLlcSubcontroller()


class TestCpuLlcSubcontroller:
    def test_allow_launches_one_instance_per_tick(self, rig):
        machine, pool, sub = rig
        for expected in (1, 2, 3, 4):
            sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
            assert pool.active_count == expected
        sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        assert pool.active_count == 4  # capped

    def test_allow_grows_thinnest_after_cap(self, rig):
        machine, pool, sub = rig
        for _ in range(4):
            sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        cores_before = machine.be_total_cores
        sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        assert machine.be_total_cores == cores_before + 1

    def test_stop_kills_everything(self, rig):
        machine, pool, sub = rig
        sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        sub.apply(BeAction.STOP_BE, machine, pool)
        assert pool.active_count == 0
        assert machine.be_instance_count == 0
        assert machine.counters.be_kills == 1

    def test_stop_resets_be_frequency(self, rig):
        machine, pool, sub = rig
        machine.dvfs.step_down(BE_DOMAIN)
        sub.apply(BeAction.STOP_BE, machine, pool)
        assert machine.dvfs.frequency(BE_DOMAIN) == machine.spec.max_mhz

    def test_suspend_pauses_all(self, rig):
        machine, pool, sub = rig
        sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        sub.apply(BeAction.SUSPEND_BE, machine, pool)
        assert machine.be_running_count == 0
        assert all(j.state == BeJobState.SUSPENDED for j in pool.jobs())

    def test_disallow_resumes_gradually(self, rig):
        machine, pool, sub = rig
        for _ in range(3):
            sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        sub.apply(BeAction.SUSPEND_BE, machine, pool)
        sub.apply(BeAction.DISALLOW_BE_GROWTH, machine, pool)
        assert machine.be_running_count == 1  # one per period
        sub.apply(BeAction.DISALLOW_BE_GROWTH, machine, pool)
        assert machine.be_running_count == 2

    def test_disallow_does_not_grow(self, rig):
        machine, pool, sub = rig
        sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        count = pool.active_count
        cores = machine.be_total_cores
        sub.apply(BeAction.DISALLOW_BE_GROWTH, machine, pool)
        assert pool.active_count == count
        assert machine.be_total_cores == cores

    def test_cut_shrinks_grown_jobs(self, rig):
        machine, pool, sub = rig
        # 4 launches up to the instance cap, then 2 growth steps.
        for _ in range(6):
            sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        cores_before = machine.be_total_cores
        assert cores_before > 4
        sub.apply(BeAction.CUT_BE, machine, pool)
        assert machine.be_total_cores < cores_before

    def test_cut_ladder_suspends_at_minimum(self, rig):
        machine, pool, sub = rig
        sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        # Jobs are at minimum footprint; repeated cuts pause them.
        for _ in range(4):
            sub.apply(BeAction.CUT_BE, machine, pool)
        assert machine.be_running_count == 0

    def test_cut_preserves_instances(self, rig):
        """Figure 17: CutBE reduces resources, not the instance count."""
        machine, pool, sub = rig
        for _ in range(3):
            sub.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        instances = machine.be_instance_count
        sub.apply(BeAction.CUT_BE, machine, pool)
        assert machine.be_instance_count == instances


class TestOtherSubcontrollers:
    def test_frequency_steps_down_over_power_cap(self):
        machine = Machine(MachineSpec(name="m0", tdp_watts=60.0))
        machine.reserve_lc(cores=12, llc_ways=10, memory_gb=64.0)
        sub = FrequencySubcontroller()
        new = sub.apply(machine, lc_busy_cores=10.0, be_busy_cores=20.0)
        assert new == machine.spec.max_mhz - 100

    def test_frequency_restores_when_cool(self):
        machine = Machine(MachineSpec(name="m0", tdp_watts=500.0))
        machine.reserve_lc(cores=12, llc_ways=10, memory_gb=64.0)
        machine.dvfs.step_down(BE_DOMAIN)
        sub = FrequencySubcontroller()
        new = sub.apply(machine, lc_busy_cores=1.0, be_busy_cores=1.0)
        assert new == machine.spec.max_mhz

    def test_frequency_validation(self):
        with pytest.raises(ControlError):
            FrequencySubcontroller(cap_fraction=0.5, restore_fraction=0.8)

    def test_memory_grows_toward_working_set(self):
        machine = Machine(MachineSpec(name="m0"))
        machine.reserve_lc(cores=12, llc_ways=10, memory_gb=64.0)
        pool = BeJobPool([STREAM_DRAM], "m0")  # wants 4 GB
        cpu = CpuLlcSubcontroller()
        mem = MemorySubcontroller()
        cpu.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        job = pool.jobs()[0]
        mem.apply(BeAction.ALLOW_BE_GROWTH, machine, pool)
        assert machine.be_allocation(job.job_id).memory_gb == pytest.approx(2.1)
        mem.apply(BeAction.CUT_BE, machine, pool)
        assert machine.be_allocation(job.job_id).memory_gb == pytest.approx(2.0)

    def test_network_updates_cap(self):
        machine = Machine(MachineSpec(name="m0", link_gbps=10.0))
        cap = NetworkSubcontroller().apply(machine, lc_net_gbps=4.0)
        assert cap == pytest.approx(10.0 - 1.2 * 4.0)


class TestBeJobPool:
    def test_cycles_specs(self):
        pool = BeJobPool([CPU_STRESS, STREAM_DRAM], "m0")
        names = [pool.new_job().spec.name for _ in range(4)]
        assert names == ["CPU-stress", "stream-dram", "CPU-stress", "stream-dram"]

    def test_kill_all_counts(self):
        pool = BeJobPool([CPU_STRESS], "m0")
        pool.new_job()
        pool.new_job()
        assert pool.kill_all() == 2
        assert pool.total_killed == 2
        assert pool.active_count == 0

    def test_unknown_job_lookup(self):
        pool = BeJobPool([CPU_STRESS], "m0")
        with pytest.raises(ControlError):
            pool.job("nope")

    def test_empty_specs_rejected(self):
        with pytest.raises(ControlError):
            BeJobPool([], "m0")
