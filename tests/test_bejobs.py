"""Tests for BE job specs, runtime state and the throughput model."""

from __future__ import annotations

import pytest

from repro.bejobs.catalog import (
    BE_CATALOG,
    CPU_STRESS,
    IPERF,
    STREAM_DRAM,
    STREAM_DRAM_SMALL,
    STREAM_LLC,
    STREAM_LLC_SMALL,
    be_job_spec,
    evaluation_be_jobs,
)
from repro.bejobs.job import BeJob, BeJobState, LcUsage, compute_be_rates
from repro.bejobs.spec import BeIntensity, BeJobSpec
from repro.cluster.machine import BE_DOMAIN, Machine, MachineSpec
from repro.errors import ConfigurationError, ControlError


class TestBeJobSpec:
    def test_cpu_usage_required(self):
        with pytest.raises(ConfigurationError):
            BeJobSpec(name="x", domain="d", intensity=BeIntensity.CPU, solo_usage={})

    def test_unknown_resource_rejected(self):
        with pytest.raises(ConfigurationError):
            BeJobSpec(
                name="x", domain="d", intensity=BeIntensity.CPU,
                solo_usage={"cpu": 1.0, "gpu": 0.5},
            )

    def test_usage_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            BeJobSpec(
                name="x", domain="d", intensity=BeIntensity.CPU,
                solo_usage={"cpu": 1.5},
            )

    def test_demand_ramps_to_saturation(self):
        spec = STREAM_DRAM
        low = spec.demand_fraction("membw", 4, 40)
        full = spec.demand_fraction("membw", spec.saturation_cores, 40)
        beyond = spec.demand_fraction("membw", spec.saturation_cores * 2, 40)
        assert low < full
        assert full == pytest.approx(spec.usage("membw"))
        assert beyond == pytest.approx(full)

    def test_cpu_demand_is_core_fraction(self):
        assert CPU_STRESS.demand_fraction("cpu", 10, 40) == pytest.approx(0.25)

    def test_zero_cores_zero_demand(self):
        assert STREAM_LLC.demand_fraction("llc", 0, 40) == 0.0


class TestCatalog:
    def test_table1_jobs_present(self):
        for name in ("CPU-stress", "stream-llc", "stream-dram", "iperf",
                     "wordcount", "imageClassify", "LSTM"):
            assert name in BE_CATALOG

    def test_big_exceeds_small(self):
        assert STREAM_LLC.usage("llc") > STREAM_LLC_SMALL.usage("llc")
        assert STREAM_DRAM.usage("membw") > STREAM_DRAM_SMALL.usage("membw")

    def test_small_occupies_half(self):
        assert STREAM_LLC_SMALL.usage("llc") == pytest.approx(0.5)
        assert STREAM_DRAM_SMALL.usage("membw") == pytest.approx(0.5)

    def test_intensities_match_table1(self):
        assert CPU_STRESS.intensity == BeIntensity.CPU
        assert STREAM_LLC.intensity == BeIntensity.LLC
        assert STREAM_DRAM.intensity == BeIntensity.DRAM
        assert IPERF.intensity == BeIntensity.NETWORK

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            be_job_spec("fortnite")

    def test_evaluation_set_has_six(self):
        jobs = evaluation_be_jobs()
        assert len(jobs) == 6
        assert not any("small" in j.name for j in jobs)


class TestBeJobLifecycle:
    def test_start_and_advance(self):
        job = BeJob("j", CPU_STRESS)
        job.start("m0")
        job.advance(10.0, 0.5)
        assert job.normalized_work == pytest.approx(5.0)
        assert job.running_seconds == pytest.approx(10.0)

    def test_suspend_blocks_progress(self):
        job = BeJob("j", CPU_STRESS)
        job.start("m0")
        job.suspend()
        job.advance(10.0, 0.5)
        assert job.normalized_work == 0.0
        job.resume()
        job.advance(10.0, 0.5)
        assert job.normalized_work == pytest.approx(5.0)

    def test_kill_loses_inflight_unit(self):
        job = BeJob("j", CPU_STRESS)  # unit_seconds = 10
        job.start("m0")
        job.advance(25.0, 1.0)  # 2 complete units + 5s in-flight
        job.kill()
        assert job.normalized_work == pytest.approx(20.0)
        assert job.units_completed == pytest.approx(2.0)

    def test_killed_job_cannot_restart(self):
        job = BeJob("j", CPU_STRESS)
        job.kill()
        with pytest.raises(ControlError):
            job.start("m0")

    def test_negative_progress_rejected(self):
        job = BeJob("j", CPU_STRESS)
        job.start("m0")
        with pytest.raises(ControlError):
            job.advance(-1.0, 0.5)


class TestComputeBeRates:
    def _machine_with_jobs(self, spec, n):
        machine = Machine(MachineSpec(name="m0"))
        machine.reserve_lc(cores=12, llc_ways=10, memory_gb=64.0)
        jobs = []
        for i in range(n):
            job = BeJob(f"j{i}", spec)
            machine.launch_be(job.job_id)
            job.start("m0")
            jobs.append(job)
        return machine, jobs

    def test_no_jobs_zero_snapshot(self):
        machine = Machine()
        snap = compute_be_rates(machine, [], LcUsage())
        assert snap.total_rate == 0.0
        assert snap.busy_cores == 0.0

    def test_suspended_jobs_do_not_run(self):
        machine, jobs = self._machine_with_jobs(CPU_STRESS, 2)
        machine.suspend_be(jobs[0].job_id)
        jobs[0].suspend()
        snap = compute_be_rates(machine, jobs, LcUsage())
        assert jobs[0].job_id not in snap.rates
        assert jobs[1].job_id in snap.rates

    def test_cpu_job_rate_proportional_to_cores(self):
        machine, jobs = self._machine_with_jobs(CPU_STRESS, 1)
        r1 = compute_be_rates(machine, jobs, LcUsage()).rates[jobs[0].job_id]
        for _ in range(3):
            machine.grow_be(jobs[0].job_id)
        r4 = compute_be_rates(machine, jobs, LcUsage()).rates[jobs[0].job_id]
        assert r4 == pytest.approx(4 * r1, rel=0.01)

    def test_rates_bounded_by_one(self):
        machine, jobs = self._machine_with_jobs(STREAM_DRAM, 4)
        snap = compute_be_rates(machine, jobs, LcUsage())
        assert all(0.0 <= r <= 1.0 for r in snap.rates.values())

    def test_lc_membw_usage_reduces_be_rates(self):
        machine, jobs = self._machine_with_jobs(STREAM_DRAM, 8)
        for job in jobs:
            for _ in range(2):
                machine.grow_be(job.job_id)
        free = compute_be_rates(machine, jobs, LcUsage(membw_fraction=0.0))
        tight = compute_be_rates(machine, jobs, LcUsage(membw_fraction=0.8))
        assert tight.total_rate < free.total_rate

    def test_nic_shaping_limits_network_jobs(self):
        machine, jobs = self._machine_with_jobs(IPERF, 2)
        for job in jobs:
            machine.grow_be(job.job_id)
        free = compute_be_rates(machine, jobs, LcUsage(net_gbps=0.0))
        shaped = compute_be_rates(machine, jobs, LcUsage(net_gbps=8.0))
        assert shaped.total_rate < free.total_rate

    def test_dvfs_throttling_reduces_cpu_rate(self):
        machine, jobs = self._machine_with_jobs(CPU_STRESS, 1)
        full = compute_be_rates(machine, jobs, LcUsage()).total_rate
        machine.dvfs.set_frequency(BE_DOMAIN, 1200)
        throttled = compute_be_rates(machine, jobs, LcUsage()).total_rate
        assert throttled == pytest.approx(full * 0.6, rel=0.01)

    def test_busy_cores_counts_allocated(self):
        machine, jobs = self._machine_with_jobs(CPU_STRESS, 3)
        snap = compute_be_rates(machine, jobs, LcUsage())
        assert snap.busy_cores == 3

    def test_membw_demand_shared_proportionally(self):
        machine, jobs = self._machine_with_jobs(STREAM_DRAM, 2)
        for job in jobs:
            for _ in range(7):
                machine.grow_be(job.job_id)
        snap = compute_be_rates(machine, jobs, LcUsage(membw_fraction=0.5))
        # Headroom is 0.5; both jobs demand 8/16 = 0.5 each -> scaled to 0.25.
        assert snap.membw_fraction == pytest.approx(0.5, abs=0.05)
        r = list(snap.rates.values())
        # Near-equal; small asymmetry comes from best-effort LLC ways.
        assert r[0] == pytest.approx(r[1], rel=0.1)
