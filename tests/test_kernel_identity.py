"""Differential tests pinning the batched kernel to the scalar reference.

The batched structure-of-arrays kernel (:mod:`repro.sim.kernel`) is only
allowed to exist because it is *bit-identical* to the scalar object
world: same ``ColocationResult`` fingerprints down to individual tick
samples, same final state of every RNG stream, in the parent process and
in fork- and spawn-started children, with and without fault injection.
These tests are that contract. They also pin the cache-key consequences:
because the kernels are provably identical, grid-cell cache keys are
deliberately shared across kernels (``kernel`` is runtime dispatch, not
a result coordinate), and the code-version salt was bumped so entries
written before the identity pin can never be served.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.baselines.heracles import HeraclesPolicy
from repro.bejobs.catalog import evaluation_be_jobs
from repro.cache.keys import CODE_VERSION_SALT
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.colocation import ColocationConfig
from repro.experiments.runner import kernel_identity_probe
from repro.parallel import artifact_for
from repro.parallel.grid import GridCell, _CellTask, cell_cache_key
from repro.sim.kernel import KERNEL_ENV_VAR, KERNELS, resolve_kernel
from repro.sim.rng import RandomStreams
from repro.workloads.queueing import QueueingComponent

from conftest import make_tiny_service


class TestResolveKernel:
    def test_default_is_batched(self, monkeypatch):
        # The batched kernel is bit-identical to scalar (tests below) and
        # ~22x faster, so it is the default; RHYTHM_KERNEL=scalar is the
        # escape hatch back to the reference implementation.
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert resolve_kernel() == "batched"
        assert resolve_kernel(None) == "batched"
        assert resolve_kernel("") == "batched"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "batched")
        assert resolve_kernel("scalar") == "scalar"

    def test_env_var_honoured(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "scalar")
        assert resolve_kernel() == "scalar"

    def test_normalisation(self):
        assert resolve_kernel("  Batched ") == "batched"

    @pytest.mark.parametrize("bad", ["vectorised", "fast", "BATCHEDX"])
    def test_unknown_kernel_rejected(self, bad, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_kernel(bad)
        monkeypatch.setenv(KERNEL_ENV_VAR, bad)
        with pytest.raises(ConfigurationError):
            resolve_kernel()

    def test_registry(self):
        assert KERNELS == ("scalar", "batched")


class TestColocationIdentity:
    """Scalar and batched runs must agree bit for bit, RNG state and all."""

    @pytest.mark.parametrize("pattern", ["constant", "step", "sweep"])
    def test_bit_identical_across_patterns(self, pattern):
        scalar = kernel_identity_probe("scalar", seed=3, pattern_name=pattern)
        batched = kernel_identity_probe("batched", seed=3, pattern_name=pattern)
        assert scalar[0] == batched[0], "result fingerprints diverged"
        assert scalar[1] == batched[1], "final RNG stream states diverged"

    def test_bit_identical_under_faults(self):
        scalar = kernel_identity_probe(
            "scalar", seed=9, pattern_name="diurnal", with_faults=True
        )
        batched = kernel_identity_probe(
            "batched", seed=9, pattern_name="diurnal", with_faults=True
        )
        assert scalar == batched

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ExperimentError):
            kernel_identity_probe("scalar", pattern_name="tidal")

    def test_fork_subprocess_identity(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                kernel_identity_probe,
                ("batched",),
                {"seed": 5, "pattern_name": "step"},
            )
        parent = kernel_identity_probe("scalar", seed=5, pattern_name="step")
        assert parent == child

    @pytest.mark.slow
    def test_spawn_subprocess_identity(self):
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                kernel_identity_probe,
                ("batched",),
                {"seed": 5, "pattern_name": "constant", "with_faults": True},
            )
        parent = kernel_identity_probe(
            "scalar", seed=5, pattern_name="constant", with_faults=True
        )
        assert parent == child


class TestQueueingIdentity:
    def _run(self, kernel):
        component = QueueingComponent(2.0, 0.3, workers=8)
        streams = RandomStreams(11)
        stats = component.simulate(
            0.7 * component.capacity_qps, 20.0, streams, kernel=kernel
        )
        states = tuple(
            (name, repr(streams._streams[name].bit_generator.state))
            for name in sorted(streams._streams)
        )
        return stats, states

    def test_stats_and_rng_bit_identical(self):
        scalar_stats, scalar_states = self._run("scalar")
        batched_stats, batched_states = self._run("batched")
        assert scalar_stats == batched_stats
        assert scalar_states == batched_states
        assert batched_stats.events > 0


@pytest.fixture(scope="module")
def tiny_artifact():
    service = make_tiny_service()
    return service, artifact_for(service, seed=0, probe_slacklimits=False)


class TestCacheKeySharing:
    """Kernels share grid-cell cache keys — valid only because the
    identity tests above prove the outputs are interchangeable."""

    def _task(self, service, artifact):
        return _CellTask(
            cell=GridCell(service, evaluation_be_jobs()[0], 0.45, seed=7),
            artifact=artifact,
            heracles_policy=HeraclesPolicy(),
            config=ColocationConfig(duration_s=20.0),
        )

    def test_kernel_is_not_a_config_coordinate(self):
        # Runtime dispatch must never leak into the hashed config, or
        # scalar- and batched-produced cells would stop sharing entries.
        assert "kernel" not in ColocationConfig.__dataclass_fields__

    def test_cell_key_invariant_across_kernels(
        self, tiny_artifact, monkeypatch
    ):
        service, artifact = tiny_artifact
        keys = {}
        for kernel in KERNELS:
            monkeypatch.setenv(KERNEL_ENV_VAR, kernel)
            keys[kernel] = cell_cache_key(self._task(service, artifact))
        assert keys["scalar"] == keys["batched"]

    def test_salt_bumped_past_pre_identity_entries(self):
        # Entries written before the identity pin (salt :3 and earlier)
        # predate result-affecting engine/vectorisation changes and must
        # never be served to either kernel.
        tag = CODE_VERSION_SALT.rsplit(":", 1)[-1]
        assert tag.isdigit() and int(tag) >= 4


class TestPercentileFastPath:
    """The partition-based percentile must be bitwise np.percentile."""

    def _cases(self):
        import numpy as np

        rng = np.random.default_rng(1234)
        sizes = [1, 2, 3, 5, 17, 100, 800, 1023]
        pcts = [0.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0]
        for n in sizes:
            scale = float(rng.uniform(1e-6, 1e6))
            values = rng.uniform(0.0, scale, size=n)
            for pct in pcts:
                yield values, pct

    def test_percentile_linear_matches_numpy_bitwise(self):
        import numpy as np

        from repro.sim.kernel import percentile_linear

        for values, pct in self._cases():
            expected = float(np.percentile(values, pct))
            assert percentile_linear(values.copy(), pct) == expected

    def test_percentile_linear_rows_matches_numpy_bitwise(self):
        import numpy as np

        from repro.sim.kernel import percentile_linear_rows

        rng = np.random.default_rng(77)
        for n in (1, 2, 7, 64, 501):
            stack = rng.uniform(0.0, 100.0, size=(5, n))
            for pct in (0.0, 50.0, 99.0, 100.0):
                expected = [
                    float(np.percentile(stack[row], pct))
                    for row in range(stack.shape[0])
                ]
                got = percentile_linear_rows(stack.copy(), pct)
                assert got == expected


class TestSmallFleetPathEquivalence:
    """The python small-fleet tick and the vectorised tick are one path
    semantically: forcing the vectorised branch on a small fleet must
    reproduce the small path's digests bit-identically."""

    def test_small_and_vectorised_ticks_agree(self, monkeypatch):
        from repro.experiments.fleet import fleet_identity_probe
        import repro.sim.kernel as kernel_mod

        small = fleet_identity_probe("fleet", n_instances=3, duration_s=40.0)
        monkeypatch.setattr(kernel_mod, "_SMALL_FLEET_MACHINES", 0)
        forced_vec = fleet_identity_probe(
            "fleet", n_instances=3, duration_s=40.0
        )
        assert forced_vec == small

    def test_vectorised_path_still_matches_scalar_reference(self, monkeypatch):
        from repro.experiments.fleet import fleet_identity_probe
        import repro.sim.kernel as kernel_mod

        monkeypatch.setattr(kernel_mod, "_SMALL_FLEET_MACHINES", 0)
        assert fleet_identity_probe(
            "fleet", n_instances=2, duration_s=30.0
        ) == fleet_identity_probe("reference", n_instances=2, duration_s=30.0)
