"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import ClockError, SimulationError
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.events import EventQueue
from repro.sim.rng import RandomStreams


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            Clock(-1.0)

    def test_rejects_nan_start(self):
        with pytest.raises(ClockError):
            Clock(float("nan"))

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_ok(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_cannot_move_backwards(self):
        clock = Clock(10.0)
        with pytest.raises(ClockError):
            clock.advance_to(9.9)

    def test_advance_by(self):
        clock = Clock(1.0)
        clock.advance_by(0.5)
        assert clock.now == 1.5

    def test_advance_by_rejects_negative(self):
        with pytest.raises(ClockError):
            Clock().advance_by(-0.1)


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda t: order.append("b"))
        q.push(1.0, lambda t: order.append("a"))
        q.push(3.0, lambda t: order.append("c"))
        while (e := q.pop()) is not None:
            e.callback(e.time)
        assert order == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda t: order.append("low-pri"), priority=10)
        q.push(1.0, lambda t: order.append("high-pri"), priority=0)
        while (e := q.pop()) is not None:
            e.callback(e.time)
        assert order == ["high-pri", "low-pri"]

    def test_fifo_for_equal_time_and_priority(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(1.0, lambda t, i=i: order.append(i))
        while (e := q.pop()) is not None:
            e.callback(e.time)
        assert order == [0, 1, 2, 3, 4]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        fired = []
        event = q.push(1.0, lambda t: fired.append("x"))
        event.cancel()
        assert q.pop() is None
        assert fired == []

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda t: None)
        q.push(2.0, lambda t: None)
        assert len(q) == 2
        e1.cancel()
        assert len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.0, lambda t: None)
        q.push(2.0, lambda t: None)
        assert q.peek_time() == 2.0

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda t: None)


class TestEngine:
    def test_run_until_horizon_advances_clock(self):
        engine = Engine()
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_events_fire_at_their_times(self):
        engine = Engine()
        times = []
        engine.at(1.0, times.append)
        engine.at(2.5, times.append)
        engine.run(until=5.0)
        assert times == [1.0, 2.5]

    def test_events_after_horizon_do_not_fire(self):
        engine = Engine()
        times = []
        engine.at(7.0, times.append)
        engine.run(until=5.0)
        assert times == []
        assert engine.now == 5.0

    def test_after_schedules_relative(self):
        engine = Engine()
        times = []
        engine.at(1.0, lambda t: engine.after(2.0, times.append))
        engine.run(until=10.0)
        assert times == [3.0]

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.at(1.0, lambda t: None)
        engine.run(until=5.0)
        with pytest.raises(SimulationError):
            engine.at(2.0, lambda t: None)

    def test_every_fires_periodically(self):
        engine = Engine()
        times = []
        engine.every(2.0, times.append)
        engine.run(until=9.0)
        assert times == [2.0, 4.0, 6.0, 8.0]

    def test_every_with_until_stops(self):
        engine = Engine()
        times = []
        engine.every(2.0, times.append, until=6.0)
        engine.run(until=20.0)
        assert times == [2.0, 4.0, 6.0]

    def test_every_cancel(self):
        engine = Engine()
        times = []
        cancel = engine.every(1.0, times.append)
        engine.at(3.5, lambda t: cancel())
        engine.run(until=10.0)
        assert times == [1.0, 2.0, 3.0]

    def test_control_priority_runs_after_arrivals(self):
        engine = Engine()
        order = []
        engine.at(1.0, lambda t: order.append("control"), priority=Engine.PRIORITY_CONTROL)
        engine.at(1.0, lambda t: order.append("arrival"), priority=Engine.PRIORITY_ARRIVAL)
        engine.run(until=2.0)
        assert order == ["arrival", "control"]

    def test_max_events_safety_valve(self):
        engine = Engine()

        def reschedule(t: float) -> None:
            engine.after(0.1, reschedule)

        engine.after(0.1, reschedule)
        fired = engine.run(until=1e9, max_events=50)
        assert fired == 50

    def test_events_fired_counter(self):
        engine = Engine()
        engine.at(1.0, lambda t: None)
        engine.at(2.0, lambda t: None)
        engine.run(until=5.0)
        assert engine.events_fired == 2


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("s") is streams.stream("s")

    def test_extra_draws_do_not_perturb_other_streams(self):
        s1 = RandomStreams(3)
        s1.stream("noisy").random(100)
        val1 = s1.stream("quiet").random(3)
        s2 = RandomStreams(3)
        val2 = s2.stream("quiet").random(3)
        assert (val1 == val2).all()

    def test_spawn_is_deterministic_and_distinct(self):
        root = RandomStreams(5)
        child_a = root.spawn("trial")
        child_b = RandomStreams(5).spawn("trial")
        assert child_a.seed == child_b.seed
        assert child_a.seed != root.seed

    def test_contains(self):
        streams = RandomStreams(0)
        assert "x" not in streams
        streams.stream("x")
        assert "x" in streams


class TestPushMany:
    def test_pop_order_matches_individual_pushes(self):
        a, b = EventQueue(), EventQueue()
        cb = lambda t: None  # noqa: E731
        items = [(3.0, cb, 0), (1.0, cb, 5), (1.0, cb, 0), (2.0, cb, 0)]
        for time, callback, priority in items:
            a.push(time, callback, priority)
        b.push_many(items)
        order_a = [(e.time, e.priority, e.seq) for e in iter(a.pop, None)]
        order_b = [(e.time, e.priority, e.seq) for e in iter(b.pop, None)]
        assert order_a == order_b

    def test_interleaves_with_existing_events(self):
        q = EventQueue()
        q.push(2.0, lambda t: None)
        q.push_many([(1.0, lambda t: None, 0), (3.0, lambda t: None, 0)])
        assert [e.time for e in iter(q.pop, None)] == [1.0, 2.0, 3.0]

    def test_len_counts_batch(self):
        q = EventQueue()
        q.push_many([(1.0, lambda t: None, 0)] * 4)
        assert len(q) == 4

    def test_batch_event_cancel(self):
        q = EventQueue()
        events = q.push_many([(1.0, lambda t: None, 0)] * 3)
        events[1].cancel()
        assert len(q) == 2
        assert [e.seq for e in iter(q.pop, None)] == [0, 2]

    def test_rejects_negative_time(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push_many([(1.0, lambda t: None, 0), (-0.5, lambda t: None, 0)])

    def test_empty_batch(self):
        q = EventQueue()
        assert q.push_many([]) == []
        assert len(q) == 0

    def test_failed_batch_leaves_queue_unchanged(self):
        q = EventQueue()
        q.push(1.0, lambda t: None)
        with pytest.raises(SimulationError):
            q.push_many([(2.0, lambda t: None, 0), (float("nan"), lambda t: None, 0)])
        assert len(q) == 1
        assert [e.time for e in iter(q.pop, None)] == [1.0]

    def test_equal_time_fifo_across_scalar_and_batch(self):
        # Sequence numbers keep equal-(time, priority) events FIFO even
        # when scheduling alternates between the scalar and batch paths.
        q = EventQueue()
        first = q.push(1.0, lambda t: None)
        batch = q.push_many([(1.0, lambda t: None, 0)] * 2)
        last = q.push(1.0, lambda t: None)
        expected = [first.seq, batch[0].seq, batch[1].seq, last.seq]
        assert [e.seq for e in iter(q.pop, None)] == sorted(expected) == expected


class TestEngineAtMany:
    def test_fires_in_time_order(self):
        engine = Engine()
        fired = []
        engine.at_many(
            [(2.0, lambda t: fired.append(t)), (1.0, lambda t: fired.append(t))]
        )
        engine.run()
        assert fired == [1.0, 2.0]

    def test_triples_carry_priority(self):
        engine = Engine()
        fired = []
        engine.at_many(
            [
                (1.0, lambda t: fired.append("ctl"), Engine.PRIORITY_CONTROL),
                (1.0, lambda t: fired.append("arr"), Engine.PRIORITY_ARRIVAL),
            ]
        )
        engine.run()
        assert fired == ["arr", "ctl"]

    def test_rejects_past_times(self):
        engine = Engine(start=5.0)
        with pytest.raises(SimulationError):
            engine.at_many([(6.0, lambda t: None), (4.0, lambda t: None)])

    def test_empty_batch_is_a_no_op(self):
        engine = Engine()
        assert engine.at_many([]) == []
        assert engine.run() == 0

    def test_default_priority_applies_to_pairs(self):
        engine = Engine()
        fired = []
        engine.at_many([(1.0, lambda t: fired.append("ctl"))], priority=Engine.PRIORITY_CONTROL)
        engine.at_many([(1.0, lambda t: fired.append("arr"))], priority=Engine.PRIORITY_ARRIVAL)
        engine.run()
        assert fired == ["arr", "ctl"]

    def test_unsorted_batch_matches_scalar_schedule(self):
        # An unsorted burst through at_many must replay exactly like the
        # same events scheduled one-by-one through at().
        items = [(3.0, 0), (1.0, Engine.PRIORITY_CONTROL), (1.0, 0), (2.0, 5), (1.0, 0)]
        runs = []
        for batched in (False, True):
            engine, fired = Engine(), []
            mark = lambda tag: lambda t: fired.append((t, tag))  # noqa: E731
            if batched:
                engine.at_many(
                    [(t, mark(i), p) for i, (t, p) in enumerate(items)]
                )
            else:
                for i, (t, p) in enumerate(items):
                    engine.at(t, mark(i), p)
            engine.run()
            runs.append(fired)
        assert runs[0] == runs[1] == [
            (1.0, 2), (1.0, 4), (1.0, 1), (2.0, 3), (3.0, 0)
        ]


class TestEveryFirstAtClamp:
    def test_past_first_at_clamps_to_now(self):
        # A schedule computed against a resumed clock may land in the
        # past; it must clamp to now instead of crashing.
        engine = Engine(start=10.0)
        fired = []
        engine.every(1.0, fired.append, first_at=7.0, until=12.0)
        engine.run(until=12.0)
        assert fired == [10.0, 11.0, 12.0]

    def test_future_first_at_unchanged(self):
        engine = Engine(start=10.0)
        fired = []
        engine.every(1.0, fired.append, first_at=10.5, until=12.0)
        engine.run(until=12.0)
        assert fired == [10.5, 11.5]


class TestPopBatchDue:
    def _queue(self, items):
        q = EventQueue()
        events = q.push_many(items)
        return q, events

    def test_pops_only_equal_time_and_priority(self):
        cb = lambda t: None  # noqa: E731
        q, _ = self._queue(
            [(1.0, cb, 0), (1.0, cb, 0), (1.0, cb, 5), (2.0, cb, 0)]
        )
        out: list = []
        assert q.pop_batch_due(None, out, 1 << 30) == 2
        assert [(e.time, e.priority) for e in out] == [(1.0, 0), (1.0, 0)]
        assert q.pop_batch_due(None, out, 1 << 30) == 1
        assert [(e.time, e.priority) for e in out] == [(1.0, 5)]

    def test_horizon_leaves_heap_intact(self):
        q, _ = self._queue([(5.0, lambda t: None, 0)])
        out: list = []
        assert q.pop_batch_due(3.0, out, 1 << 30) == 0
        assert out == []
        assert len(q) == 1
        assert q.peek_time() == 5.0

    def test_empty_queue_returns_zero(self):
        q = EventQueue()
        out: list = []
        assert q.pop_batch_due(None, out, 1 << 30) == 0

    def test_limit_caps_batch(self):
        cb = lambda t: None  # noqa: E731
        q, _ = self._queue([(1.0, cb, 0)] * 5)
        out: list = []
        assert q.pop_batch_due(None, out, 2) == 2
        assert len(q) == 3

    def test_cancelled_events_skipped(self):
        cb = lambda t: None  # noqa: E731
        q, events = self._queue([(1.0, cb, 0)] * 3 + [(2.0, cb, 0)])
        events[0].cancel()
        events[2].cancel()
        out: list = []
        assert q.pop_batch_due(None, out, 1 << 30) == 1
        assert out[0] is events[1]

    def test_reinsert_restores_pop_order(self):
        cb = lambda t: None  # noqa: E731
        q, _ = self._queue([(1.0, cb, 0), (1.0, cb, 0)])
        out: list = []
        q.pop_batch_due(None, out, 1 << 30)
        q.reinsert(out[1])
        assert len(q) == 1
        assert q.pop() is out[1]


class TestCoalescedRunLoop:
    def test_same_tick_lower_priority_scheduled_mid_batch_fires_first(self):
        # Historic single-pop semantics: an arrival scheduled *during* a
        # control batch at the same time must fire before the rest of
        # the batch. The reinsert guard preserves exactly that.
        engine = Engine()
        order = []

        def control_a(t: float) -> None:
            order.append("ctl-a")
            engine.at(t, lambda t2: order.append("arrival"),
                      priority=Engine.PRIORITY_ARRIVAL)

        engine.at(1.0, control_a, priority=Engine.PRIORITY_CONTROL)
        engine.at(1.0, lambda t: order.append("ctl-b"),
                  priority=Engine.PRIORITY_CONTROL)
        engine.run(until=2.0)
        assert order == ["ctl-a", "arrival", "ctl-b"]

    def test_same_tick_same_priority_scheduled_mid_batch_fires_after(self):
        engine = Engine()
        order = []

        def first(t: float) -> None:
            order.append("first")
            engine.at(t, lambda t2: order.append("late"))

        engine.at(1.0, first)
        engine.at(1.0, lambda t: order.append("second"))
        engine.run(until=2.0)
        assert order == ["first", "second", "late"]

    def test_cancel_within_batch_skipped(self):
        # An event cancelled by an earlier member of its own coalesced
        # batch must not fire (the scalar loop skipped it too).
        engine, order = Engine(), []
        victim = [None]

        def killer(t: float) -> None:
            order.append("killer")
            victim[0].cancel()

        engine.at(1.0, killer)
        victim[0] = engine.at(1.0, lambda t: order.append("victim"))
        fired = engine.run(until=2.0)
        assert order == ["killer"]
        assert fired == 1

    def test_max_events_splits_batch(self):
        engine = Engine()
        order = []
        for i in range(4):
            engine.at(1.0, (lambda i: lambda t: order.append(i))(i))
        assert engine.run(max_events=2) == 2
        assert order == [0, 1]
        assert engine.run(max_events=10) == 2
        assert order == [0, 1, 2, 3]

    def test_coalesced_matches_scalar_trace(self):
        # Differential: a mixed burst must fire in exactly the order the
        # historical one-pop loop produced (time, then priority, then
        # schedule order).
        items = [
            (1.0, 0), (1.0, 5), (1.0, 0), (2.0, 10), (2.0, 0), (1.5, 0)
        ]
        engine, fired = Engine(), []
        for i, (t, p) in enumerate(items):
            engine.at(t, (lambda i: lambda t2: fired.append(i))(i), priority=p)
        engine.run()
        assert fired == [0, 2, 1, 5, 4, 3]
