"""Tests for the single-pass controller bake-off.

The load-bearing contract: every member of a
:class:`~repro.sim.kernel.BakeoffKernel` pass — result fingerprint AND
final RNG stream states — is bit-identical to running that member alone
through a fresh :class:`ColocationExperiment`, in-process, in fork- and
spawn-started children, and under fault schedules. Divergence forking
is exercised at its edges (never diverge, diverge at the first tick,
re-converge mid-run), and the cell cache is pinned to treat the
controller member as a key coordinate while wall-clock knobs stay out.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.baselines.heracles import heracles_controllers
from repro.baselines.interference import (
    InterferencePolicy,
    interference_controllers,
)
from repro.baselines.predictive import PredictivePolicy, predictive_controllers
from repro.bejobs.catalog import evaluation_be_jobs
from repro.cache import CacheStore
from repro.cache.keys import CODE_VERSION_SALT
from repro.core.actions import BeAction
from repro.core.controller import ColocationController
from repro.errors import ConfigurationError
from repro.experiments.bakeoff import (
    BakeoffConfig,
    BakeoffMember,
    bakeoff_cell_key,
    bakeoff_identity_probe,
    bakeoff_member_digest,
    bakeoff_scenario_grid,
    default_members,
    heracles_member,
    interference_member,
    predictive_member,
    run_bakeoff,
    run_member_reference,
)
from repro.experiments.colocation import ColocationConfig, ColocationExperiment
from repro.faults.spec import FaultSchedule
from repro.loadgen.patterns import ConstantLoad, DiurnalLoad
from repro.parallel.grid import colocation_fingerprint
from repro.sim.kernel import BakeoffKernel
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import redis_service


def rng_states(streams):
    return tuple(
        (name, repr(streams._streams[name].bit_generator.state))
        for name in sorted(streams._streams)
    )


class Scripted(ColocationController):
    """Plays a fixed per-tick action script (for divergence edge cases)."""

    def __init__(self, pod, sla_ms, script, default):
        super().__init__(pod, sla_ms)
        self.script = dict(script)
        self.default = default
        self.calls = 0

    def _decide(self, load, tail_ms):
        action = self.script.get(self.calls, self.default)
        self.calls += 1
        return action


def scripted(script, default):
    return lambda service: {
        pod: Scripted(pod, service.sla_ms, script, default)
        for pod in service.servpod_names
    }


def run_independent(service, controllers_fn, pattern, seed, config):
    exp = ColocationExperiment(
        service,
        controllers_fn(service),
        [evaluation_be_jobs()[0]],
        pattern,
        streams=RandomStreams(seed),
        config=config,
    )
    return colocation_fingerprint(exp.run()), rng_states(exp.streams)


def run_shared(service, members, pattern, seed, config):
    """One bake-off pass; returns (kernel, results)."""
    first = next(iter(members.values()))
    root = ColocationExperiment(
        service,
        first(service),
        [evaluation_be_jobs()[0]],
        pattern,
        streams=RandomStreams(seed),
        config=config,
    )
    kernel = BakeoffKernel(root, {n: fn(service) for n, fn in members.items()})
    return kernel, kernel.run()


def assert_members_identical(service, members, pattern, seed, config):
    kernel, results = run_shared(service, members, pattern, seed, config)
    for name, fn in members.items():
        fingerprint, states = run_independent(
            service, fn, pattern, seed, config
        )
        assert colocation_fingerprint(results[name]) == fingerprint, name
        assert rng_states(kernel.member_streams(name)) == states, name
    return kernel


class TestBakeoffKernelIdentity:
    """Shared-pass results are bit-identical to independent runs."""

    def test_three_family_roster_healthy(self):
        service = redis_service()
        kernel = assert_members_identical(
            service,
            {
                "heracles": heracles_controllers,
                "interference": interference_controllers,
                "predictive": predictive_controllers,
            },
            DiurnalLoad(base=0.5, amplitude=0.25, period_s=60.0),
            3,
            ColocationConfig(duration_s=60.0),
        )
        # The pass must actually share physics, not run 3x independently.
        assert kernel.stats.branch_ticks < kernel.stats.ticks * 3

    def test_identity_under_faults(self):
        service = redis_service()
        faults = FaultSchedule.generate(7, 60.0, faults_per_minute=4.0)
        assert_members_identical(
            service,
            {
                "heracles": heracles_controllers,
                "stopper": scripted({}, BeAction.STOP_BE),
            },
            DiurnalLoad(base=0.5, amplitude=0.25, period_s=60.0),
            3,
            ColocationConfig(duration_s=60.0, faults=faults),
        )

    def test_never_diverge_is_pure_sharing(self):
        # Two members running the exact same policy: one branch,
        # zero forks, every physics pass shared.
        service = redis_service()
        kernel = assert_members_identical(
            service,
            {"a": heracles_controllers, "b": heracles_controllers},
            DiurnalLoad(base=0.5, amplitude=0.25, period_s=60.0),
            3,
            ColocationConfig(duration_s=60.0),
        )
        assert kernel.stats.forks == 0
        assert kernel.stats.merges == 0
        assert kernel.stats.branch_ticks == kernel.stats.ticks
        assert len(kernel._branches) == 1

    def test_diverge_at_tick_zero_degenerates_to_independent(self):
        # Members disagreeing from the very first tick (and STOP is
        # never memoizable) fork immediately and stay forked: the
        # shared pass degenerates to independent execution.
        service = redis_service()
        kernel = assert_members_identical(
            service,
            {
                "grower": scripted({}, BeAction.ALLOW_BE_GROWTH),
                "stopper": scripted({}, BeAction.STOP_BE),
            },
            ConstantLoad(0.4),
            5,
            ColocationConfig(duration_s=60.0),
        )
        assert kernel.stats.forks == 1
        assert len(kernel._branches) == 2
        # Both branches tick every tick after the first-tick fork.
        assert kernel.stats.branch_ticks == 2 * kernel.stats.ticks - 1

    def test_reconverge_mid_run_merges_back(self):
        # "ab" allows one launch then stops (killing the job claws its
        # work back to a whole-unit boundary), "b" stops throughout —
        # their worlds re-converge and the branches must re-merge.
        service = redis_service()
        kernel = assert_members_identical(
            service,
            {
                "ab": scripted(
                    {0: BeAction.ALLOW_BE_GROWTH, 1: BeAction.STOP_BE},
                    BeAction.STOP_BE,
                ),
                "b": scripted({}, BeAction.STOP_BE),
            },
            ConstantLoad(0.4),
            5,
            ColocationConfig(duration_s=60.0),
        )
        assert kernel.stats.forks >= 1
        assert kernel.stats.merges >= 1
        assert len(kernel._branches) == 1

    def test_high_divergence_roster_under_faults(self):
        # The worst case for copy-on-write forking: five members whose
        # scripts disagree early and often, under an active fault
        # schedule (so forked clones carry live injector state), with a
        # mid-run flip that lets some branches re-converge. Every member
        # must still match its independent reference run bit for bit.
        service = redis_service()
        faults = FaultSchedule.generate(11, 60.0, faults_per_minute=6.0)
        kernel = assert_members_identical(
            service,
            {
                "grower": scripted({}, BeAction.ALLOW_BE_GROWTH),
                "stopper": scripted({}, BeAction.STOP_BE),
                "flipper": scripted(
                    {0: BeAction.ALLOW_BE_GROWTH, 1: BeAction.STOP_BE},
                    BeAction.STOP_BE,
                ),
                "late": scripted(
                    {3: BeAction.STOP_BE}, BeAction.ALLOW_BE_GROWTH
                ),
                "heracles": heracles_controllers,
            },
            DiurnalLoad(base=0.5, amplitude=0.25, period_s=60.0),
            5,
            ColocationConfig(duration_s=60.0, faults=faults),
        )
        assert kernel.stats.forks >= 3

    def test_rejects_empty_roster_and_missing_pods(self):
        service = redis_service()
        exp = ColocationExperiment(
            service,
            heracles_controllers(service),
            [evaluation_be_jobs()[0]],
            ConstantLoad(0.4),
            streams=RandomStreams(0),
            config=ColocationConfig(duration_s=30.0),
        )
        with pytest.raises(ConfigurationError):
            BakeoffKernel(exp, {})
        partial = heracles_controllers(service)
        partial.popitem()
        with pytest.raises(ConfigurationError):
            BakeoffKernel(exp, {"partial": partial})

    def test_rejects_action_filter(self):
        service = redis_service()
        exp = ColocationExperiment(
            service,
            heracles_controllers(service),
            [evaluation_be_jobs()[0]],
            ConstantLoad(0.4),
            streams=RandomStreams(0),
            config=ColocationConfig(duration_s=30.0),
        )
        exp.action_filter = lambda pod, action: action
        with pytest.raises(ConfigurationError):
            BakeoffKernel(exp, {"a": heracles_controllers(service)})


class TestBakeoffExperiment:
    """run_bakeoff vs. per-member reference runs, and the league table."""

    def _grid(self, **kwargs):
        kwargs.setdefault("loads", (0.35, 0.55))
        kwargs.setdefault("duration_s", 60.0)
        kwargs.setdefault("seed", 3)
        return bakeoff_scenario_grid(**kwargs)

    def _members(self):
        return [
            heracles_member("Redis"),
            interference_member(),
            predictive_member(),
        ]

    def test_cells_match_reference_bitwise(self):
        config = BakeoffConfig(duration_s=60.0)
        scenarios = self._grid()
        members = self._members()
        result = run_bakeoff(scenarios, members, config, cache=None)
        for cell in result.cells:
            scenario = next(s for s in scenarios if s.label == cell.scenario)
            member = next(m for m in members if m.name == cell.member)
            reference = run_member_reference(scenario, member, config)
            assert cell == reference
        assert result.passes == len(scenarios)

    def test_probe_modes_agree(self):
        assert bakeoff_identity_probe("bakeoff") == bakeoff_identity_probe(
            "reference"
        )

    def test_league_ranks_by_violations_then_emu(self):
        result = run_bakeoff(
            self._grid(),
            self._members(),
            BakeoffConfig(duration_s=60.0),
            cache=None,
        )
        league = result.league()
        assert [row.rank for row in league] == list(
            range(1, len(league) + 1)
        )
        keys = [(row.sla_violations, -row.emu) for row in league]
        assert keys == sorted(keys)
        assert {row.member for row in league} == {
            m.name for m in self._members()
        }

    def test_default_members_cover_four_families(self):
        members = default_members("Redis")
        assert [m.name for m in members] == [
            "rhythm",
            "heracles",
            "interference",
            "predictive",
        ]

    def test_validation_errors(self):
        config = BakeoffConfig(duration_s=30.0)
        members = self._members()
        with pytest.raises(ConfigurationError):
            run_bakeoff([], members, config)
        with pytest.raises(ConfigurationError):
            run_bakeoff(self._grid(), [], config)
        with pytest.raises(ConfigurationError):
            run_bakeoff(
                self._grid(),
                [interference_member(), interference_member()],
                config,
            )
        with pytest.raises(ConfigurationError):
            BakeoffMember(name="x", kind="nope")
        with pytest.raises(ConfigurationError):
            BakeoffMember(name="x", kind="policies")


class TestBakeoffIdentityAcrossProcesses:
    def test_fork_subprocess_identity(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(1) as pool:
            child = pool.apply(bakeoff_identity_probe, ("bakeoff",))
        assert child == bakeoff_identity_probe("reference")

    @pytest.mark.slow
    def test_spawn_subprocess_identity(self):
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                bakeoff_identity_probe, ("bakeoff",), {"with_faults": True}
            )
        assert child == bakeoff_identity_probe(
            "reference", with_faults=True
        )


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "bakeoff-cache")


class TestBakeoffCellKey:
    def _parts(self):
        scenario = bakeoff_scenario_grid(loads=(0.45,), duration_s=30.0)[0]
        return scenario, interference_member(), BakeoffConfig(duration_s=30.0)

    def test_member_is_a_key_coordinate(self):
        # The whole point of the bake-off cache: who decided matters.
        scenario, member, config = self._parts()
        base = bakeoff_cell_key(scenario, member, config)
        assert base != bakeoff_cell_key(
            scenario,
            interference_member(InterferencePolicy(cut_above=0.75)),
            config,
        )
        assert base != bakeoff_cell_key(
            scenario, predictive_member(), config
        )
        assert base != bakeoff_cell_key(
            scenario, interference_member(name="renamed"), config
        )

    def test_scenario_label_is_not_a_coordinate(self):
        import dataclasses

        scenario, member, config = self._parts()
        relabeled = dataclasses.replace(scenario, label="elsewhere")
        assert bakeoff_cell_key(scenario, member, config) == bakeoff_cell_key(
            relabeled, member, config
        )

    def test_fleet_wall_clock_knobs_remain_non_coordinates(self):
        # Companion regression: the member became a coordinate while
        # shard/worker counts stayed out of every key family.
        from repro.experiments.fleet import FleetConfig, zone_cache_key
        from repro.loadgen.patterns import ConstantLoad as CL

        from tests.test_fleet_cache import constant_specs

        specs = constant_specs(2)
        del CL  # imported only to mirror the fleet test fixture
        base = zone_cache_key(specs, FleetConfig(duration_s=30.0))
        for shards, workers in ((2, 1), (4, 2), (8, None)):
            assert base == zone_cache_key(
                specs,
                FleetConfig(duration_s=30.0, shards=shards, workers=workers),
            )

    def test_salt_bumped_past_pre_bakeoff_entries(self):
        # :5 entries predate the controller-interface extraction and
        # the bakeoff-cell family; they must never be served again.
        tag = CODE_VERSION_SALT.rsplit(":", 1)[-1]
        assert tag.isdigit() and int(tag) >= 6


class TestBakeoffCaching:
    def _run(self, store, members=None, loads=(0.35, 0.55)):
        return run_bakeoff(
            bakeoff_scenario_grid(loads=loads, duration_s=30.0, seed=3),
            members
            or [
                heracles_member("Redis"),
                interference_member(),
                predictive_member(),
            ],
            BakeoffConfig(duration_s=30.0),
            cache=store,
        )

    def test_warm_rerun_zero_passes_identical_digest(self, store):
        cold = self._run(store)
        warm = self._run(store)
        assert cold.digest == warm.digest
        assert cold.cells == warm.cells
        assert warm.passes == 0
        assert warm.cache.hits == warm.cache.total == 6
        assert warm.cache.simulated == 0

    def test_uncached_run_reports_no_stats(self):
        result = self._run(None)
        assert result.cache is None

    def test_partial_roster_hits_then_extends(self, store):
        solo = self._run(store, members=[interference_member()])
        extended = self._run(store)
        assert extended.cache.hits == 2  # interference, both scenarios
        assert extended.cache.misses == 4
        # Served-from-cache cells equal the freshly simulated ones.
        for cell in solo.cells:
            twin = next(
                c
                for c in extended.cells
                if c.member == cell.member and c.scenario == cell.scenario
            )
            assert twin == cell

    def test_retuned_member_misses_cleanly(self, store):
        self._run(store)
        retuned = self._run(
            store,
            members=[
                heracles_member("Redis"),
                interference_member(InterferencePolicy(cut_above=0.75)),
                predictive_member(),
            ],
        )
        assert retuned.cache.hits == 4
        assert retuned.cache.misses == 2

    def test_corrupted_entry_recomputes(self, store):
        cold = self._run(store, members=[interference_member()])
        scenario = bakeoff_scenario_grid(
            loads=(0.35, 0.55), duration_s=30.0, seed=3
        )[0]
        key = bakeoff_cell_key(
            scenario, interference_member(), BakeoffConfig(duration_s=30.0)
        )
        store.put(key, ("not", "a", "summary"))
        again = self._run(store, members=[interference_member()])
        assert again.digest == cold.digest
        assert again.cache.misses == 1 and again.cache.hits == 1


class TestMemberDigest:
    def test_digest_folds_fingerprint_and_rng(self):
        service = redis_service()
        config = ColocationConfig(duration_s=30.0)
        exp = ColocationExperiment(
            service,
            heracles_controllers(service),
            [evaluation_be_jobs()[0]],
            ConstantLoad(0.4),
            streams=RandomStreams(2),
            config=config,
        )
        result = exp.run()
        digest = bakeoff_member_digest(exp.streams, result)
        assert len(digest) == 64 and int(digest, 16) >= 0
        # Rebuilding the same run reproduces the digest exactly.
        exp2 = ColocationExperiment(
            service,
            heracles_controllers(service),
            [evaluation_be_jobs()[0]],
            ConstantLoad(0.4),
            streams=RandomStreams(2),
            config=config,
        )
        assert bakeoff_member_digest(exp2.streams, exp2.run()) == digest
