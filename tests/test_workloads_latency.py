"""Tests for the generative latency model and request execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workloads.latency import LatencyModel
from repro.workloads.request import build_execution
from repro.workloads.spec import CallNode, ComponentSpec, ServpodSpec, chain

from conftest import make_tiny_service


@pytest.fixture
def comp() -> ComponentSpec:
    return ComponentSpec(
        name="c", base_ms=10.0, sigma0=0.3, lin_growth=0.5,
        sat_growth=0.8, sigma_growth=2.0, cov_knee=0.6,
    )


class TestComponentLatency:
    def test_median_grows_with_load(self, comp):
        medians = [LatencyModel.component_median_ms(comp, u) for u in (0.1, 0.5, 0.9)]
        assert medians == sorted(medians)

    def test_median_scales_with_slowdown(self, comp):
        base = LatencyModel.component_median_ms(comp, 0.5)
        slowed = LatencyModel.component_median_ms(comp, 0.5, slowdown=3.0)
        assert slowed == pytest.approx(3 * base)

    def test_slowdown_below_one_rejected(self, comp):
        with pytest.raises(ConfigurationError):
            LatencyModel.component_median_ms(comp, 0.5, slowdown=0.5)

    def test_sigma_flat_below_knee(self, comp):
        assert LatencyModel.component_sigma(comp, 0.1) == pytest.approx(
            LatencyModel.component_sigma(comp, comp.cov_knee)
        )

    def test_sigma_rises_after_knee(self, comp):
        at_knee = LatencyModel.component_sigma(comp, comp.cov_knee)
        past = LatencyModel.component_sigma(comp, 0.95)
        assert past > at_knee

    def test_mean_exceeds_median(self, comp):
        median = LatencyModel.component_median_ms(comp, 0.5)
        mean = LatencyModel.component_mean_ms(comp, 0.5)
        assert mean > median  # lognormal: mean = median * exp(sigma^2/2)

    def test_cov_increases_with_load_past_knee(self, comp):
        assert LatencyModel.component_cov(comp, 0.95) > LatencyModel.component_cov(comp, 0.3)

    def test_load_bounds(self, comp):
        with pytest.raises(ConfigurationError):
            LatencyModel.component_median_ms(comp, 1.5)
        with pytest.raises(ConfigurationError):
            LatencyModel.component_median_ms(comp, -0.1)


class TestServpodSampling:
    def test_sample_matches_analytic_mean(self, comp):
        pod = ServpodSpec("p", (comp,))
        rng = RandomStreams(0).stream("t")
        draws = LatencyModel.sample_servpod_ms(pod, 0.5, 20000, rng)
        assert draws.mean() == pytest.approx(
            LatencyModel.servpod_mean_ms(pod, 0.5), rel=0.03
        )

    def test_samples_positive(self, comp):
        pod = ServpodSpec("p", (comp,))
        rng = RandomStreams(0).stream("t")
        assert (LatencyModel.sample_servpod_ms(pod, 0.9, 1000, rng) > 0).all()

    def test_multi_component_pod_sums(self, comp):
        solo = ServpodSpec("p", (comp,))
        double = ServpodSpec(
            "p2",
            (comp, ComponentSpec(name="c2", base_ms=10.0, sigma0=0.3,
                                 lin_growth=0.5, sat_growth=0.8)),
        )
        assert LatencyModel.servpod_mean_ms(double, 0.5) > LatencyModel.servpod_mean_ms(solo, 0.5)


class TestBuildExecution:
    def test_chain_e2e_is_sum_plus_hops(self):
        root = chain("a", "b")
        record = build_execution(root, lambda pod: 10.0, hop_ms=0.0)
        assert record.e2e_ms == pytest.approx(20.0)

    def test_hops_add_transit(self):
        root = chain("a", "b")
        record = build_execution(root, lambda pod: 10.0, hop_ms=1.0)
        assert record.e2e_ms == pytest.approx(22.0)  # 2 hops on the a<->b edge

    def test_parallel_takes_max(self):
        sojourns = {"m": 2.0, "s1": 10.0, "s2": 4.0}
        root = CallNode("m", children=(CallNode("s1"), CallNode("s2")), parallel=True)
        record = build_execution(root, sojourns.__getitem__, hop_ms=0.0)
        assert record.e2e_ms == pytest.approx(12.0)

    def test_sequential_children_add(self):
        sojourns = {"m": 2.0, "s1": 10.0, "s2": 4.0}
        root = CallNode("m", children=(CallNode("s1"), CallNode("s2")), parallel=False)
        record = build_execution(root, sojourns.__getitem__, hop_ms=0.0)
        assert record.e2e_ms == pytest.approx(16.0)

    def test_sojourn_attribution(self):
        root = chain("a", "b", "c")
        record = build_execution(root, lambda pod: 5.0, hop_ms=0.0)
        assert record.sojourn_by_servpod() == pytest.approx(
            {"a": 5.0, "b": 5.0, "c": 5.0}
        )

    def test_local_intervals_exclude_downstream_wait(self):
        root = chain("a", "b")
        record = build_execution(root, lambda pod: 10.0, split=0.5, hop_ms=0.0)
        seg_a = next(s for s in record.segments if s.servpod == "a")
        assert seg_a.sojourn_ms == pytest.approx(10.0)
        assert seg_a.depart - seg_a.arrive == pytest.approx(20.0)  # incl. b's time

    def test_parent_linkage(self):
        root = chain("a", "b")
        record = build_execution(root, lambda pod: 1.0)
        by_pod = {s.servpod: s for s in record.segments}
        assert by_pod["a"].parent_seg == -1
        assert by_pod["b"].parent_seg == by_pod["a"].seg_id

    def test_negative_sojourn_rejected(self):
        with pytest.raises(ConfigurationError):
            build_execution(chain("a"), lambda pod: -1.0)

    def test_bad_split_rejected(self):
        with pytest.raises(ConfigurationError):
            build_execution(chain("a"), lambda pod: 1.0, split=1.5)


class TestVectorizedSamplingIdentity:
    """Broadcast sampling must equal the historical scalar loop bit-for-bit."""

    @staticmethod
    def _scalar_reference(pod, load, n, rng, slowdown=1.0, sigma_inflation=1.0):
        import math

        total = None
        for c in pod.components:
            median = LatencyModel.component_median_ms(c, load, slowdown)
            sigma = LatencyModel.component_sigma(c, load, sigma_inflation)
            draws = rng.lognormal(mean=math.log(median), sigma=sigma, size=n)
            total = draws if total is None else total + draws
        return total

    def _pod(self) -> ServpodSpec:
        comps = tuple(
            ComponentSpec(
                name=f"c{i}", base_ms=2.0 + 3.0 * i, sigma0=0.2 + 0.05 * i,
                lin_growth=0.4, sat_growth=0.5, sigma_growth=2.0, cov_knee=0.6,
            )
            for i in range(3)
        )
        return ServpodSpec("multi", comps, llc_ways=4, memory_gb=8.0)

    @pytest.mark.parametrize("load,n", [(0.2, 1), (0.55, 257), (0.95, 1000)])
    def test_draws_bit_identical(self, load, n):
        pod = self._pod()
        ref_rng = RandomStreams(9).stream("s")
        new_rng = RandomStreams(9).stream("s")
        reference = self._scalar_reference(pod, load, n, ref_rng)
        batched = LatencyModel.sample_servpod_ms(pod, load, n, new_rng)
        assert np.array_equal(batched, reference)
        # Stream state equality: same number of underlying draws consumed.
        assert ref_rng.bit_generator.state == new_rng.bit_generator.state

    def test_interference_parameters_identical(self):
        pod = self._pod()
        ref_rng = RandomStreams(2).stream("s")
        new_rng = RandomStreams(2).stream("s")
        reference = self._scalar_reference(
            pod, 0.7, 500, ref_rng, slowdown=1.4, sigma_inflation=1.2
        )
        batched = LatencyModel.sample_servpod_ms(
            pod, 0.7, 500, new_rng, slowdown=1.4, sigma_inflation=1.2
        )
        assert np.array_equal(batched, reference)


class TestServiceE2eFastPath:
    def test_sample_e2e_matches_sojourn_walk_exactly(self):
        from repro.workloads.service import Service

        a = Service(make_tiny_service(), RandomStreams(21))
        b = Service(make_tiny_service(), RandomStreams(21))
        fast = a.sample_e2e(0.6, 400)
        full = b.sample_sojourns(0.6, 400)["__e2e__"]
        assert np.array_equal(fast, full)
