"""Stateful property test: machine resource conservation.

Drives a :class:`~repro.cluster.machine.Machine` through arbitrary
interleavings of BE lifecycle operations (launch, grow, shrink, suspend,
resume, kill, memory steps) and checks the conservation invariants after
every step: cores and LLC ways are never oversubscribed or leaked, and
memory accounting never goes negative.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.cluster.machine import Machine, MachineSpec
from repro.errors import AllocationError


class MachineLifecycle(RuleBasedStateMachine):
    """Random BE lifecycle interleavings against one machine."""

    @initialize()
    def setup(self):
        self.machine = Machine(MachineSpec(name="m", cores=20, llc_ways=10))
        self.machine.reserve_lc(cores=8, llc_ways=4, memory_gb=32.0)
        self.counter = 0
        self.live: list[str] = []

    # -- operations ------------------------------------------------------

    @rule()
    def launch(self):
        self.counter += 1
        job_id = f"j{self.counter}"
        if self.machine.can_launch_be():
            self.machine.launch_be(job_id)
            self.live.append(job_id)
        else:
            with pytest.raises(AllocationError):
                self.machine.launch_be(job_id)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def grow(self, data):
        job_id = data.draw(st.sampled_from(self.live))
        self.machine.grow_be(job_id)  # may legitimately return False

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def shrink(self, data):
        job_id = data.draw(st.sampled_from(self.live))
        self.machine.shrink_be(job_id)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def suspend_resume(self, data):
        job_id = data.draw(st.sampled_from(self.live))
        self.machine.suspend_be(job_id)
        self.machine.resume_be(job_id)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def memory_steps(self, data):
        job_id = data.draw(st.sampled_from(self.live))
        self.machine.grow_be_memory(job_id)
        self.machine.shrink_be_memory(job_id)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def kill(self, data):
        job_id = data.draw(st.sampled_from(self.live))
        self.machine.kill_be(job_id)
        self.live.remove(job_id)

    # -- invariants ------------------------------------------------------------

    @invariant()
    def cores_conserved(self):
        if not hasattr(self, "machine"):
            return
        machine = self.machine
        owned = machine.lc_cores + machine.be_total_cores
        assert owned + machine.cpuset.free_cores == machine.spec.cores
        assert machine.be_total_cores >= len(self.live)  # >= 1 core/job

    @invariant()
    def llc_conserved(self):
        if not hasattr(self, "machine"):
            return
        machine = self.machine
        owned = machine.lc_llc_ways + machine.be_total_llc_ways
        assert owned + machine.llc.free_ways == machine.llc.n_ways

    @invariant()
    def memory_never_negative(self):
        if not hasattr(self, "machine"):
            return
        assert self.machine.free_memory_gb >= -1e-9
        for alloc in self.machine.be_jobs().values():
            assert alloc.memory_gb >= self.machine.be_initial_memory_gb - 1e-9

    @invariant()
    def allocation_records_match_live_set(self):
        if not hasattr(self, "machine"):
            return
        assert set(self.machine.be_jobs()) == set(self.live)


MachineLifecycle.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestMachineLifecycle = MachineLifecycle.TestCase
