"""Tests for the co-location experiment harness and comparison runner."""

from __future__ import annotations

import pytest

from repro.baselines.heracles import heracles_controllers
from repro.bejobs.catalog import CPU_STRESS, STREAM_DRAM
from repro.core.top_controller import ControllerThresholds, TopController
from repro.errors import ExperimentError
from repro.experiments.colocation import (
    ColocationConfig,
    ColocationExperiment,
    make_sla_probe,
)
from repro.experiments.report import render_heatmap, render_table
from repro.experiments.runner import ComparisonResult, run_cell
from repro.loadgen.patterns import ConstantLoad
from repro.sim.rng import RandomStreams

from conftest import make_tiny_service

FAST = ColocationConfig(duration_s=40.0, sample_cap=200, min_samples=50)


def permissive_controllers(spec):
    """Controllers that let BE jobs grow whenever there is any slack."""
    return {
        pod: TopController(
            pod, ControllerThresholds(loadlimit=0.9, slacklimit=0.05), spec.sla_ms
        )
        for pod in spec.servpod_names
    }


class TestColocationExperiment:
    def test_runs_and_reports(self, tiny_service):
        result = run_cell(
            tiny_service, permissive_controllers(tiny_service),
            CPU_STRESS, ConstantLoad(0.4), config=FAST,
        )
        assert result.duration_s == 40.0
        assert set(result.machines) == {"front", "back"}
        assert result.lc_load_mean == pytest.approx(0.4, abs=0.02)
        assert result.be_throughput > 0
        assert result.emu > result.lc_load_mean

    def test_deterministic(self, tiny_service):
        kwargs = dict(
            be_spec=CPU_STRESS, pattern=ConstantLoad(0.4), seed=5, config=FAST
        )
        a = run_cell(tiny_service, permissive_controllers(tiny_service), **kwargs)
        b = run_cell(tiny_service, permissive_controllers(tiny_service), **kwargs)
        assert a.be_throughput == b.be_throughput
        assert a.worst_tail_ms == b.worst_tail_ms

    def test_be_jobs_grow_over_time(self, tiny_service):
        result = run_cell(
            tiny_service, permissive_controllers(tiny_service),
            CPU_STRESS, ConstantLoad(0.3), config=FAST,
        )
        samples = result.machine("back").samples
        assert samples[-1].be_instances > samples[0].be_instances

    def test_high_load_suppresses_colocation(self, tiny_service):
        busy = run_cell(
            tiny_service, heracles_controllers(tiny_service),
            STREAM_DRAM, ConstantLoad(0.9), config=FAST,
        )
        assert busy.be_throughput == 0.0

    def test_missing_controller_rejected(self, tiny_service):
        with pytest.raises(ExperimentError):
            ColocationExperiment(
                tiny_service, {}, [CPU_STRESS], ConstantLoad(0.5), config=FAST
            )

    def test_no_be_specs_rejected(self, tiny_service):
        with pytest.raises(ExperimentError):
            ColocationExperiment(
                tiny_service, permissive_controllers(tiny_service), [],
                ConstantLoad(0.5), config=FAST,
            )

    def test_unknown_machine_lookup_rejected(self, tiny_service):
        result = run_cell(
            tiny_service, permissive_controllers(tiny_service),
            CPU_STRESS, ConstantLoad(0.3), config=FAST,
        )
        with pytest.raises(ExperimentError):
            result.machine("ghost")

    def test_interference_raises_tail_vs_solo(self, tiny_service):
        from repro.baselines.static import LcSoloPolicy

        solo = run_cell(
            tiny_service, LcSoloPolicy().controllers(tiny_service),
            STREAM_DRAM, ConstantLoad(0.6), config=FAST,
        )
        loaded = run_cell(
            tiny_service, permissive_controllers(tiny_service),
            STREAM_DRAM, ConstantLoad(0.6), config=FAST,
        )
        assert loaded.worst_tail_ms > solo.worst_tail_ms
        assert solo.be_throughput == 0.0

    def test_completed_work_metric_set(self, tiny_service):
        result = run_cell(
            tiny_service, permissive_controllers(tiny_service),
            CPU_STRESS, ConstantLoad(0.3), config=FAST,
        )
        for metrics in result.machines.values():
            assert metrics.completed_be_throughput is not None


class TestSlaProbe:
    def test_probe_flags_aggressive_config(self, tiny_service):
        probe = make_sla_probe(
            tiny_service,
            loadlimits={pod: 0.95 for pod in tiny_service.servpod_names},
            be_specs=[STREAM_DRAM],
            # The tiny fixture is not SLA-calibrated, so probe at a load
            # where the solo run is comfortably below its SLA.
            pattern=ConstantLoad(0.6),
            streams=RandomStreams(0),
            config=ColocationConfig(duration_s=60.0, sample_cap=200, min_samples=50),
        )
        conservative = {pod: 1.0 for pod in tiny_service.servpod_names}
        assert probe(conservative) is False


class TestComparisonResult:
    def _fake(self, r_emu, h_emu):
        class R:
            emu = r_emu
            be_throughput = r_emu - 0.4
            cpu_utilisation = 0.5
            membw_utilisation = 0.4

        class H:
            emu = h_emu
            be_throughput = h_emu - 0.4
            cpu_utilisation = 0.4
            membw_utilisation = 0.3

        return ComparisonResult("svc", "be", 0.5, R(), H())

    def test_relative_improvement(self):
        cmp = self._fake(1.2, 1.0)
        assert cmp.emu_improvement == pytest.approx(0.2)
        assert cmp.be_throughput_gain == pytest.approx(0.2)

    def test_zero_baseline_returns_absolute(self):
        cmp = self._fake(0.5, 0.0)
        assert cmp.emu_improvement == pytest.approx(0.5)


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        assert "x" in text

    def test_render_heatmap(self):
        text = render_heatmap(
            ["r1"], ["c1", "c2"], {("r1", "c1"): 1.0}, title="H"
        )
        assert "H" in text
        assert "---" in text  # missing cell placeholder
