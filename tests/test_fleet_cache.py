"""Tests for shard-granular fleet result caching.

The cache unit is a *zone* — the shard-count-invariant slice of the
fleet — keyed by :func:`repro.experiments.fleet.zone_cache_key` over
the zone's instance specs plus the result-affecting ``FleetConfig``
fields. The load-bearing contracts:

- shard count (and every other wall-clock knob) is NOT a key
  coordinate: 1/2/4/8-way shardings of the same fleet hit the same
  per-zone entries;
- a warm re-run executes zero simulations and reproduces the cold
  run's ``FleetResult.digest`` bit-identically;
- editing one zone re-simulates only that zone;
- corrupt or evicted entries silently fall back to recompute.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cache import CacheStore
from repro.errors import CacheKeyError
from repro.experiments.fleet import (
    FleetCacheStats,
    FleetConfig,
    FleetExperiment,
    FleetInstanceSpec,
    alibaba_fleet,
    heracles_fleet_policies,
    zone_cache_key,
)
from repro.loadgen.patterns import CallableLoad, ConstantLoad
from repro.parallel.pool import broadcast, shard_task_key


def small_fleet(
    n_instances: int = 4,
    duration_s: float = 30.0,
    seed: int = 3,
    **config_kwargs,
) -> FleetExperiment:
    config_kwargs.setdefault("workers", 1)
    config_kwargs.setdefault("zone_size", 2)
    config = FleetConfig(duration_s=duration_s, **config_kwargs)
    return alibaba_fleet(
        2 * n_instances,
        policy="heracles",
        duration_s=duration_s,
        seed=seed,
        config=config,
    )


def constant_specs(n: int, seed0: int = 70) -> list:
    policies = tuple(sorted(heracles_fleet_policies("Redis").items()))
    return [
        FleetInstanceSpec(
            service="Redis",
            policies=policies,
            be_jobs=("stream-llc",),
            pattern=ConstantLoad(0.5),
            seed=seed0 + k,
        )
        for k in range(n)
    ]


def half_load(t: float) -> float:
    """Module-level so CallableLoad specs stay picklable by reference."""
    return 0.5


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "fleet-cache")


class TestZoneCacheKey:
    def test_wall_clock_knobs_are_not_coordinates(self):
        specs = tuple(constant_specs(4))
        config = FleetConfig(duration_s=30.0, shards=1, workers=1, zone_size=4)
        key = zone_cache_key(specs, config)
        for variant in (
            dataclasses.replace(config, shards=8),
            dataclasses.replace(config, workers=None),
            dataclasses.replace(config, zone_size=2),
            dataclasses.replace(config, epoch_ticks=5),  # governor off
        ):
            assert zone_cache_key(specs, variant) == key

    def test_result_affecting_fields_are_coordinates(self):
        specs = tuple(constant_specs(4))
        config = FleetConfig(duration_s=30.0)
        key = zone_cache_key(specs, config)
        for variant in (
            dataclasses.replace(config, duration_s=40.0),
            dataclasses.replace(config, sample_cap=100),
            dataclasses.replace(config, max_be_instances=8),
            dataclasses.replace(config, violation_threshold=0.5),
        ):
            assert zone_cache_key(specs, variant) != key

    def test_epoch_ticks_matters_only_when_governed(self):
        specs = tuple(constant_specs(4))
        governed = FleetConfig(duration_s=30.0, violation_threshold=0.5)
        assert zone_cache_key(
            specs, dataclasses.replace(governed, epoch_ticks=5)
        ) != zone_cache_key(specs, governed)

    def test_specs_are_coordinates(self):
        specs = constant_specs(4)
        config = FleetConfig(duration_s=30.0)
        key = zone_cache_key(tuple(specs), config)
        edited = list(specs)
        edited[0] = dataclasses.replace(edited[0], seed=999)
        assert zone_cache_key(tuple(edited), config) != key
        assert zone_cache_key(tuple(specs[:3]), config) != key

    def test_unhashable_pattern_raises(self):
        spec = dataclasses.replace(
            constant_specs(1)[0], pattern=CallableLoad(half_load)
        )
        with pytest.raises(CacheKeyError):
            zone_cache_key((spec,), FleetConfig(duration_s=30.0))


class TestFleetCaching:
    def test_uncached_run_reports_no_stats(self):
        result = small_fleet(n_instances=2, duration_s=20.0).run()
        assert result.cache is None

    def test_cache_true_honors_rhythm_cache_off(self, monkeypatch, tmp_path):
        monkeypatch.setenv("RHYTHM_CACHE_DIR", str(tmp_path / "c"))
        monkeypatch.setenv("RHYTHM_CACHE", "off")
        result = small_fleet(n_instances=2, duration_s=20.0).run(cache=True)
        assert result.cache is None

    def test_warm_rerun_zero_simulations_identical_digest(self, store):
        fleet = small_fleet()
        cold = fleet.run(cache=store)
        assert cold.cache.misses == 2 and cold.cache.hits == 0
        warm = fleet.run(cache=store)
        assert warm.cache.hits == 2 and warm.cache.simulated == 0
        assert warm.digest == cold.digest
        assert warm.zone_records == cold.zone_records
        assert [s.index for s in warm.instances] == [
            s.index for s in cold.instances
        ]

    def test_warm_matches_uncached_result_exactly(self, store):
        fleet = small_fleet()
        plain = fleet.run()
        fleet.run(cache=store)
        warm = fleet.run(cache=store)
        assert warm.digest == plain.digest
        assert [dataclasses.astuple(s) for s in warm.instances] == [
            dataclasses.astuple(s) for s in plain.instances
        ]

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_shard_counts_hit_the_same_entries(self, store, shards):
        cold = small_fleet(shards=1).run(cache=store)
        refit = small_fleet(shards=shards)
        warm = refit.run(cache=store)
        assert warm.cache.hits == cold.cache.total
        assert warm.cache.simulated == 0
        assert warm.digest == cold.digest

    def test_single_zone_edit_resimulates_only_that_zone(self, store):
        fleet = small_fleet(n_instances=6, shards=2)  # 3 zones of 2
        cold = fleet.run(cache=store)
        assert cold.cache.misses == 3
        specs = list(fleet.instances)
        specs[2] = dataclasses.replace(specs[2], seed=specs[2].seed + 1000)
        edited = FleetExperiment(specs, fleet.config)
        incremental = edited.run(cache=store)
        assert incremental.cache.hits == 2
        assert incremental.cache.misses == 1
        # Untouched instances keep their exact digests.
        for k in (0, 1, 4, 5):
            assert (
                incremental.instances[k].digest == cold.instances[k].digest
            )
        assert incremental.instances[2].digest != cold.instances[2].digest
        # And the incremental result is itself fully warm now.
        assert edited.run(cache=store).cache.simulated == 0

    def test_growing_the_fleet_reuses_existing_zones(self, store):
        fleet = small_fleet(n_instances=4)
        fleet.run(cache=store)
        grown = FleetExperiment(
            list(fleet.instances) + constant_specs(2), fleet.config
        )
        result = grown.run(cache=store)
        assert result.cache.hits == 2  # the original zones
        assert result.cache.misses == 1  # the appended zone

    def test_governed_fleet_caches_zone_records(self, store):
        fleet = small_fleet(
            duration_s=40.0, violation_threshold=0.5, epoch_ticks=5
        )
        cold = fleet.run(cache=store)
        warm = fleet.run(cache=store)
        assert warm.cache.simulated == 0
        assert warm.digest == cold.digest
        assert warm.zone_records == cold.zone_records
        assert len(cold.zone_records) > 0

    def test_corrupted_entry_recomputes(self, store):
        fleet = small_fleet()
        cold = fleet.run(cache=store)
        victim = store._entries()[0]
        victim.write_bytes(b"\x80\x05 not a fleet zone")
        warm = fleet.run(cache=store)
        assert warm.cache.misses == 1 and warm.cache.hits == 1
        assert warm.digest == cold.digest
        # The recompute re-stored the entry.
        assert fleet.run(cache=store).cache.simulated == 0

    def test_malformed_payload_shape_recomputes(self, store):
        fleet = small_fleet()
        cold = fleet.run(cache=store)
        key = zone_cache_key(fleet.instances[:2], fleet.config)
        store.put(key, {"not": "a zone tuple"})
        warm = fleet.run(cache=store)
        assert warm.cache.misses == 1
        assert warm.digest == cold.digest

    def test_lru_eviction_under_tiny_cap(self, tmp_path):
        fleet = small_fleet()
        probe = CacheStore(tmp_path / "probe")
        fleet.run(cache=probe)
        entry_bytes = probe.stats().total_bytes // probe.stats().entries
        tiny = CacheStore(
            tmp_path / "tiny", max_bytes=int(1.5 * entry_bytes)
        )
        cold = fleet.run(cache=tiny)
        assert tiny.evictions > 0
        assert tiny.stats().total_bytes <= tiny.max_bytes
        # Some zones were evicted, so the re-run is only partially warm
        # — but still bit-identical.
        warm = fleet.run(cache=tiny)
        assert warm.cache.hits >= 1
        assert warm.digest == cold.digest

    def test_uncacheable_zone_counted_skipped(self, store):
        specs = constant_specs(4)
        specs[3] = dataclasses.replace(
            specs[3], pattern=CallableLoad(half_load)
        )
        config = FleetConfig(duration_s=20.0, workers=1, zone_size=2)
        fleet = FleetExperiment(specs, config)
        first = fleet.run(cache=store)
        assert first.cache.misses == 1 and first.cache.skipped == 1
        again = fleet.run(cache=store)
        assert again.cache.hits == 1 and again.cache.skipped == 1
        assert again.digest == first.digest


class TestFleetCacheStats:
    def test_totals_and_merge(self):
        stats = FleetCacheStats(hits=2, misses=1, skipped=1)
        assert stats.total == 4
        assert stats.simulated == 2
        other = FleetCacheStats(hits=1)
        other.merge(stats)
        assert other.hits == 3 and other.total == 5


class TestShardTaskKey:
    def test_key_depends_on_payload_and_spans_only(self):
        ref_a = broadcast(("payload", 1))
        ref_b = broadcast(("payload", 2))
        spans = ((0, 4), (8, 2))
        assert shard_task_key("fleet-shard", ref_a, spans) == shard_task_key(
            "fleet-shard", ref_a, spans
        )
        assert shard_task_key("fleet-shard", ref_a, spans) != shard_task_key(
            "fleet-shard", ref_b, spans
        )
        assert shard_task_key("fleet-shard", ref_a, spans) != shard_task_key(
            "fleet-shard", ref_a, ((0, 4),)
        )

    def test_pending_plan_matches_historical_sharding(self):
        # A cold run (every zone pending) must reproduce the historical
        # contiguous zone-aligned plan, with adjacent zones merged into
        # one span per shard.
        fleet = small_fleet(n_instances=4, shards=2)
        plan_2 = fleet._pending_shard_plan(
            [(z, s, c, None) for z, s, c in fleet.zone_plan()]
        )
        solo = FleetExperiment(
            fleet.instances, dataclasses.replace(fleet.config, shards=1)
        )
        plan_1 = solo._pending_shard_plan(
            [(z, s, c, None) for z, s, c in solo.zone_plan()]
        )
        assert plan_1 == (((0, 4),),)
        assert plan_2 == (((0, 2),), ((2, 2),))
        # A non-contiguous pending set keeps separate spans.
        sparse = solo._pending_shard_plan(
            [(0, 0, 2, None), (2, 4, 2, None)]
        )
        assert sparse == (((0, 2), (4, 2)),)


class TestStormCacheInteraction:
    """Correlated storms invalidate exactly their blast-radius zones.

    Storm faults ride inside ``FleetInstanceSpec.faults``, which
    ``zone_cache_key`` already hashes — so a zone's key changes iff the
    storm's blast radius intersects it, a warm re-run of the identical
    storm executes zero simulations, and editing one domain event
    re-simulates only that event's blast radius.
    """

    def stormed_pair(self, events_per_minute: float = 2.0, storm_seed: int = 7):
        from repro.experiments.scenarios import storm_fleet
        from repro.faults.topology import CorrelatedFaultSchedule, FleetTopology

        fleet = small_fleet(n_instances=6)
        topology = FleetTopology.generate(
            storm_seed, n_instances=len(fleet.instances), zone_size=2
        )
        storm = CorrelatedFaultSchedule.generate(
            storm_seed,
            topology,
            fleet.config.duration_s,
            events_per_minute=events_per_minute,
        )
        return fleet, storm, storm_fleet(fleet, storm)

    def zone_keys(self, fleet):
        size = fleet.config.zone_size
        return [
            zone_cache_key(fleet.instances[start:start + size], fleet.config)
            for start in range(0, len(fleet.instances), size)
        ]

    def test_zone_key_changes_iff_blast_radius_intersects(self):
        fleet, storm, stormed = self.stormed_pair()
        touched = set(storm.affected_zones())
        assert 0 < len(touched) < len(self.zone_keys(fleet))
        for zone, (healthy_key, stormed_key) in enumerate(
            zip(self.zone_keys(fleet), self.zone_keys(stormed))
        ):
            if zone in touched:
                assert stormed_key != healthy_key
            else:
                assert stormed_key == healthy_key

    def test_warm_identical_storm_zero_simulations(self, store):
        _fleet, _storm, stormed = self.stormed_pair()
        cold = stormed.run(cache=store)
        warm = stormed.run(cache=store)
        assert warm.cache.simulated == 0
        assert warm.cache.hits == cold.cache.total
        assert warm.digest == cold.digest

    def test_one_event_change_recomputes_only_blast_radius(self, store):
        from repro.experiments.scenarios import storm_fleet

        fleet, storm, stormed = self.stormed_pair(events_per_minute=3.0)
        cold = stormed.run(cache=store)
        zones = cold.cache.total
        # Drop the event with the smallest blast radius; only its zones'
        # merged fault schedules change.
        dropped = min(storm.events, key=lambda e: len(storm.blast_zones(e)))
        changed = set(storm.blast_zones(dropped))
        assert changed and len(changed) < zones
        reduced = dataclasses.replace(
            storm, events=tuple(e for e in storm.events if e != dropped)
        )
        edited = storm_fleet(fleet, reduced).run(cache=store)
        assert edited.cache.misses == len(changed)
        assert edited.cache.hits == zones - len(changed)

    def test_storm_entries_are_shard_invariant(self, store):
        _fleet, _storm, stormed = self.stormed_pair()
        cold = stormed.run(cache=store)
        for shards in (1, 3):
            re_run = FleetExperiment(
                stormed.instances,
                dataclasses.replace(stormed.config, shards=shards),
            ).run(cache=store)
            assert re_run.cache.simulated == 0
            assert re_run.digest == cold.digest
