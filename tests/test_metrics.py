"""Tests for percentiles, time series, EMU and the metric collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.collector import MachineMetrics
from repro.metrics.emu import EmuAccumulator, UtilisationAccumulator
from repro.metrics.percentile import ReservoirSampler, WindowedTailTracker, percentile
from repro.metrics.timeseries import TimeSeries


class TestPercentile:
    def test_matches_numpy(self):
        data = list(np.random.default_rng(0).random(500))
        assert percentile(data, 99.0) == pytest.approx(np.percentile(data, 99.0))

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        r = ReservoirSampler(capacity=100)
        r.extend(range(50))
        assert len(r) == 50
        assert r.seen == 50

    def test_caps_at_capacity(self):
        r = ReservoirSampler(capacity=100)
        r.extend(range(1000))
        assert len(r) == 100
        assert r.seen == 1000

    def test_percentile_estimate_reasonable(self):
        rng = np.random.default_rng(1)
        data = rng.normal(100, 10, 20000)
        r = ReservoirSampler(capacity=4096, seed=2)
        r.extend(data)
        assert r.percentile(50.0) == pytest.approx(100.0, abs=1.5)


class TestWindowedTail:
    def test_per_window_tails(self):
        t = WindowedTailTracker(pct=50.0)
        t.add_samples([1.0, 2.0, 3.0])
        assert t.roll_window() == pytest.approx(2.0)
        t.add_samples([10.0, 20.0, 30.0])
        assert t.roll_window() == pytest.approx(20.0)
        assert t.worst_tail == pytest.approx(20.0)
        assert t.current_tail == pytest.approx(20.0)
        assert t.window_tails == pytest.approx([2.0, 20.0])

    def test_empty_window_returns_none(self):
        t = WindowedTailTracker()
        assert t.roll_window() is None

    def test_violation_count(self):
        t = WindowedTailTracker(pct=50.0)
        for values in ([1.0], [5.0], [2.0]):
            t.add_samples(values)
            t.roll_window()
        assert t.violation_count(sla=3.0) == 1


class TestTimeSeries:
    def test_append_and_summaries(self):
        s = TimeSeries("x")
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
            s.append(t, v)
        assert len(s) == 3
        assert s.mean() == pytest.approx(3.0)
        assert s.max() == 5.0
        assert s.last() == 5.0

    def test_time_weighted_mean(self):
        s = TimeSeries()
        s.append(0.0, 10.0)  # held for 1s
        s.append(1.0, 0.0)   # held for 9s
        s.append(10.0, 99.0)  # terminal stamp
        assert s.time_weighted_mean() == pytest.approx(1.0)

    def test_backwards_time_rejected(self):
        s = TimeSeries()
        s.append(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            s.append(0.5, 0.0)

    def test_empty_summaries_raise(self):
        with pytest.raises(ConfigurationError):
            TimeSeries().mean()


class TestEmu:
    def test_emu_is_lc_plus_be(self):
        acc = EmuAccumulator()
        acc.observe(10.0, lc_load=0.6, be_rate=0.5)
        acc.observe(10.0, lc_load=0.8, be_rate=0.3)
        assert acc.lc_throughput == pytest.approx(0.7)
        assert acc.be_throughput == pytest.approx(0.4)
        assert acc.emu == pytest.approx(1.1)  # can exceed 1 (paper §5.1)

    def test_negative_rejected(self):
        acc = EmuAccumulator()
        with pytest.raises(ConfigurationError):
            acc.observe(1.0, -0.1, 0.0)

    def test_empty_is_zero(self):
        assert EmuAccumulator().emu == 0.0


class TestUtilisation:
    def test_cpu_utilisation(self):
        acc = UtilisationAccumulator(total_cores=40)
        acc.observe(10.0, busy_cores=20.0, membw_fraction=0.5)
        assert acc.cpu_utilisation == pytest.approx(0.5)
        assert acc.membw_utilisation == pytest.approx(0.5)

    def test_clamped_at_capacity(self):
        acc = UtilisationAccumulator(total_cores=40)
        acc.observe(10.0, busy_cores=100.0, membw_fraction=2.0)
        assert acc.cpu_utilisation == 1.0
        assert acc.membw_utilisation == 1.0


class TestMachineMetrics:
    def _metrics(self) -> MachineMetrics:
        return MachineMetrics(
            machine_name="m0", servpod="pod", total_cores=40.0, sla_ms=100.0
        )

    def _tick(self, m: MachineMetrics, t: float, tail: float, be_rate: float = 0.2):
        m.record_tick(
            t=t, dt=2.0, load=0.5, tail_ms=tail, busy_cores=20.0,
            membw_fraction=0.4, be_instances=2, be_cores=4, be_llc_ways=4,
            be_rate=be_rate, action="AllowBEGrowth",
        )

    def test_slack_computed(self):
        m = self._metrics()
        self._tick(m, 2.0, tail=75.0)
        assert m.samples[0].slack == pytest.approx(0.25)

    def test_sla_violations_counted(self):
        m = self._metrics()
        self._tick(m, 2.0, tail=90.0)
        self._tick(m, 4.0, tail=120.0)
        assert m.sla_violations == 1

    def test_averages(self):
        m = self._metrics()
        self._tick(m, 2.0, tail=50.0, be_rate=0.4)
        self._tick(m, 4.0, tail=50.0, be_rate=0.2)
        assert m.avg_be_throughput == pytest.approx(0.3)
        assert m.avg_emu == pytest.approx(0.5 + 0.3)
        assert m.avg_cpu_utilisation == pytest.approx(0.5)

    def test_completed_override(self):
        m = self._metrics()
        self._tick(m, 2.0, tail=50.0, be_rate=0.4)
        m.completed_be_throughput = 0.1
        assert m.avg_be_throughput == 0.1
