"""Figure 7 — Servpod sensitivity vs contribution (§3.4 validation)."""

from __future__ import annotations

from repro.experiments.figures.figure7 import correlation_by_be, run_figure7
from repro.experiments.report import render_table

from conftest import run_once


def test_figure7_sensitivity_vs_contribution(benchmark):
    rows = run_once(benchmark, run_figure7)

    print()
    print(render_table(
        ["BE", "Servpod", "contribution", "sensitivity"],
        [[r.be_kind, r.servpod, round(r.contribution, 4), round(r.sensitivity, 3)]
         for r in rows],
        title="Figure 7 — sensitivity vs contribution scatter",
    ))
    correlations = correlation_by_be(rows)
    print(render_table(
        ["BE panel", "Pearson r"],
        [[k, round(v, 3)] for k, v in correlations.items()],
        title="Per-panel correlation (paper: positive in all four panels)",
    ))

    # The paper's validation: sensitivity is positively correlated with
    # contribution no matter which BE generates the interference.
    for be_kind, r in correlations.items():
        assert r > 0.5, f"panel {be_kind} not positively correlated (r={r})"
