"""Algorithm 1 — per-Servpod slacklimit derivation (§3.5.1)."""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.runner import clear_rhythm_cache, get_rhythm
from repro.workloads.catalog import ecommerce_service, redis_service

from conftest import run_once


def _derive():
    clear_rhythm_cache()
    ecom = get_rhythm(ecommerce_service())
    redis = get_rhythm(redis_service())
    return ecom, redis


def test_slacklimit_algorithm1(benchmark):
    ecom, redis = run_once(benchmark, _derive)

    ecom_limits = ecom.slacklimits()
    redis_limits = redis.slacklimits()
    paper = {"haproxy": 0.032, "tomcat": 0.078, "amoeba": 0.04, "mysql": 0.347}
    print()
    print(render_table(
        ["Servpod", "slacklimit", "paper"],
        [[pod, round(v, 3), paper.get(pod, "-")] for pod, v in ecom_limits.items()],
        title="Algorithm 1 — E-commerce slacklimits (probe-driven)",
    ))
    print(render_table(
        ["Servpod", "slacklimit"],
        [[pod, round(v, 3)] for pod, v in redis_limits.items()],
        title="Algorithm 1 — Redis slacklimits",
    ))

    # Ordering matches the paper: MySQL (most sensitive) gets the most
    # conservative gate; HAProxy/Amoeba the most aggressive ones.
    assert ecom_limits["mysql"] > ecom_limits["tomcat"]
    assert ecom_limits["tomcat"] > ecom_limits["haproxy"]
    assert ecom_limits["tomcat"] > ecom_limits["amoeba"]
    # Redis: Master (sensitive) above Slave.
    assert redis_limits["master"] > redis_limits["slave"]
    # All limits live in the valid band.
    for limits in (ecom_limits, redis_limits):
        assert all(0.01 <= v <= 1.0 for v in limits.values())
