"""Figure 15 — production-load heatmaps and the safety panel (§5.3.1)."""

from __future__ import annotations

from repro.experiments.figures.figure15 import worst_safety_cell
from repro.experiments.report import render_heatmap

from conftest import production_grid, run_once


def test_figure15_production_load(benchmark):
    rows = run_once(benchmark, production_grid)

    services = sorted({r.service for r in rows})
    bes = sorted({r.be_job for r in rows})
    print()
    for metric, title in (
        ("emu_improvement", "Figure 15a — EMU improvement (%)"),
        ("cpu_improvement", "Figure 15b — CPU-util improvement (%)"),
        ("membw_improvement", "Figure 15c — MemBW-util improvement (%)"),
        ("worst_p99_over_sla", "Figure 15d — worst p99 / SLA"),
    ):
        scale = 100.0 if metric.endswith("improvement") else 1.0
        fmt = "{:6.1f}" if scale == 100.0 else "{:6.2f}"
        print(render_heatmap(
            services, [b[:12] for b in bes],
            {(r.service, r.be_job[:12]): getattr(r, metric) * scale for r in rows},
            title=title, fmt=fmt,
        ))

    # Panel (d): Rhythm strictly guards the SLA in every cell — the
    # paper's worst cell is 0.99 x SLA with zero violations.
    worst = worst_safety_cell(rows)
    print(f"worst safety cell: {worst.service}/{worst.be_job} "
          f"= {worst.worst_p99_over_sla:.2f} x SLA")
    assert worst.worst_p99_over_sla <= 1.0
    assert all(r.rhythm_violations == 0 for r in rows)
    assert all(r.be_kills == 0 for r in rows)

    # Rhythm's EMU improves on Heracles on average across the grid.
    mean_emu = sum(r.emu_improvement for r in rows) / len(rows)
    print(f"mean EMU improvement: {mean_emu:+.2%}")
    assert mean_emu > 0.0
