"""Figure 17 — the runtime control timeline (§5.4.1)."""

from __future__ import annotations

from collections import Counter

from repro.experiments.figures.figure17 import run_figure17
from repro.experiments.report import render_table

from conftest import run_once


def test_figure17_timeline(benchmark):
    data = run_once(benchmark, run_figure17)

    print()
    for pod in data.servpods:
        samples = data.samples[pod]
        step = max(1, len(samples) // 16)
        print(render_table(
            ["t", "load", "slack", "BE cores", "BE LLC", "BE inst", "BE rate", "action"],
            [[int(s.t), round(s.load, 2), round(s.slack, 2), s.be_cores,
              s.be_llc_ways, s.be_instances, round(s.be_rate, 2), s.action]
             for s in samples[::step]],
            title=(f"Figure 17 — {pod} timeline (loadlimit="
                   f"{data.loadlimit[pod]:.2f}, slacklimit={data.slacklimit[pod]:.2f})"),
        ))

    for pod in data.servpods:
        actions = Counter(data.actions(pod))
        samples = data.samples[pod]
        # The controller both grows BEs and reacts to the diurnal peak.
        assert actions["AllowBEGrowth"] > 0
        assert actions["SuspendBE"] + actions["CutBE"] + actions["DisallowBEGrowth"] > 0
        # SuspendBE fires exactly when the load metric crosses the
        # loadlimit (and the tail is within the SLA).
        for s in samples:
            if s.action == "SuspendBE":
                assert s.load > data.loadlimit[pod]
        # BE state actually varies over the day (growth + shedding).
        cores = [s.be_cores for s in samples]
        assert max(cores) > min(cores)
        # No SLA violation across the run (no StopBE storm).
        assert all(s.slack >= 0 or s.action == "StopBE" for s in samples)

    # MySQL (loadlimit 0.78) suspends earlier/more often than Tomcat
    # (loadlimit 0.88) under the same trace.
    mysql_suspends = Counter(data.actions("mysql"))["SuspendBE"]
    tomcat_suspends = Counter(data.actions("tomcat"))["SuspendBE"]
    assert mysql_suspends >= tomcat_suspends
