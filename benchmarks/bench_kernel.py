"""Scalar-vs-batched simulation kernel benchmark → ``BENCH_kernel.json``.

Times the same workloads under both kernels on ONE core and reports
events/sec and the speedup, per workload and in aggregate:

- ``colocation``: one Redis-vs-Heracles co-location cell (the control
  tick path the batched SoA kernel vectorises).
- ``queueing``: a G/G/8 request-level queue near saturation (the path
  where the engine-free Lindley recurrence replaces hundreds of
  thousands of discrete events).

Identity is checked the hard way before any number is reported:
fingerprints plus the final state of every RNG stream must match across
kernels in-process, in a fork-started child and in a spawn-started
child, with and without fault injection. ``identical_results`` is the
conjunction of all of those checks — a fast batched kernel that drifts
by one bit fails the benchmark outright.

Run standalone (``PYTHONPATH=src python benchmarks/bench_kernel.py
[--out BENCH_kernel.json] [--gate 5.0]``) or via
``pytest benchmarks/bench_kernel.py --benchmark-only``. With ``--gate
X`` the process exits non-zero when the aggregate speedup falls below
``X``× or identity fails — CI wires this behind ``RHYTHM_BENCH_GATE=1``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import time
from typing import Dict, Optional, Tuple

from bench_env import environment
from repro.baselines.heracles import heracles_controllers
from repro.bejobs.catalog import evaluation_be_jobs
from repro.experiments.colocation import ColocationConfig, ColocationExperiment
from repro.experiments.runner import kernel_identity_probe
from repro.loadgen.patterns import ConstantLoad
from repro.parallel.grid import colocation_fingerprint
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import redis_service
from repro.workloads.queueing import QueueingComponent

#: Per-workload sizing. The colocation cell runs the full control loop
#: at the paper's 2 s period — 40 simulated minutes so the tick path
#: dominates the fixed deploy/profile setup cost; the queue runs at 70%
#: of an 8-worker component's capacity, which yields ~10^5 events per
#: simulated minute.
COLOCATION_DURATION_S = 2400.0
QUEUE_DURATION_S = 120.0
QUEUE_LOAD = 0.7
#: Timing repeats per (workload, kernel); the reported time is the
#: minimum, the standard estimator for a deterministic workload's cost
#: on a noisy machine. Identity is still checked on every repeat.
TIMING_REPEATS = 3
DEFAULT_REPORT = "BENCH_kernel.json"
DEFAULT_GATE = None


def _run_colocation(kernel: str) -> Tuple[float, int, Tuple]:
    """One timed co-location cell; returns (seconds, events, fingerprint)."""
    service = redis_service()
    experiment = ColocationExperiment(
        service,
        heracles_controllers(service),
        [evaluation_be_jobs()[0]],
        ConstantLoad(0.55),
        streams=RandomStreams(7),
        config=ColocationConfig(duration_s=COLOCATION_DURATION_S),
        kernel=kernel,
    )
    t0 = time.perf_counter()
    result = experiment.run()
    elapsed = time.perf_counter() - t0
    states = tuple(
        (name, repr(experiment.streams._streams[name].bit_generator.state))
        for name in sorted(experiment.streams._streams)
    )
    return elapsed, result.events_fired, (colocation_fingerprint(result), states)


def _run_queueing(kernel: str) -> Tuple[float, int, Tuple]:
    """One timed queueing run; returns (seconds, events, fingerprint)."""
    component = QueueingComponent(2.0, 0.3, workers=8)
    streams = RandomStreams(11)
    t0 = time.perf_counter()
    stats = component.simulate(
        QUEUE_LOAD * component.capacity_qps,
        QUEUE_DURATION_S,
        streams,
        kernel=kernel,
    )
    elapsed = time.perf_counter() - t0
    states = tuple(
        (name, repr(streams._streams[name].bit_generator.state))
        for name in sorted(streams._streams)
    )
    return elapsed, stats.events, (stats, states)


def _subprocess_identity() -> bool:
    """Cross-process identity: fork and spawn children must reproduce the
    parent's scalar run bit-for-bit under the batched kernel, with and
    without fault injection."""
    cases = [
        {"seed": 5, "pattern_name": "step", "with_faults": False},
        {"seed": 5, "pattern_name": "constant", "with_faults": True},
    ]
    methods = [
        m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
    ]
    for method in methods:
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(1) as pool:
            for case in cases:
                child = pool.apply(kernel_identity_probe, ("batched",), case)
                if kernel_identity_probe("scalar", **case) != child:
                    return False
    return bool(methods)


def run_benchmark(
    out: Optional[str] = DEFAULT_REPORT, gate: Optional[float] = DEFAULT_GATE
) -> Dict[str, object]:
    """Time both kernels on both workloads; write and return the report."""
    workloads: Dict[str, Dict[str, object]] = {}
    identical = True
    total = {"scalar_s": 0.0, "batched_s": 0.0, "events": 0}

    def timed_best_of(runner, kernel):
        """Best-of-``TIMING_REPEATS`` timing; every repeat must agree."""
        best_s, events, print_ = runner(kernel)
        for _ in range(TIMING_REPEATS - 1):
            s, ev, p = runner(kernel)
            if (ev, p) != (events, print_):
                raise AssertionError(
                    f"{kernel} kernel was not deterministic across repeats"
                )
            best_s = min(best_s, s)
        return best_s, events, print_

    for name, runner in (("colocation", _run_colocation), ("queueing", _run_queueing)):
        scalar_s, scalar_events, scalar_print = timed_best_of(runner, "scalar")
        batched_s, batched_events, batched_print = timed_best_of(runner, "batched")
        same = scalar_print == batched_print and scalar_events == batched_events
        identical = identical and same
        workloads[name] = {
            "scalar_s": round(scalar_s, 4),
            "batched_s": round(batched_s, 4),
            "events": scalar_events,
            "events_per_sec_scalar": round(scalar_events / scalar_s, 1),
            "events_per_sec_batched": round(batched_events / batched_s, 1),
            "speedup": round(scalar_s / batched_s, 2) if batched_s > 0 else None,
            "identical": same,
        }
        total["scalar_s"] += scalar_s
        total["batched_s"] += batched_s
        total["events"] += scalar_events

    # In-process identity under every probe pattern, plus faults.
    probe_ok = all(
        kernel_identity_probe("scalar", seed=3, pattern_name=p, with_faults=f)
        == kernel_identity_probe("batched", seed=3, pattern_name=p, with_faults=f)
        for p, f in (
            ("constant", False),
            ("step", False),
            ("sweep", False),
            ("diurnal", True),
        )
    )
    subprocess_ok = _subprocess_identity()
    identical = identical and probe_ok and subprocess_ok

    speedup = (
        round(total["scalar_s"] / total["batched_s"], 2)
        if total["batched_s"] > 0
        else None
    )
    report: Dict[str, object] = {
        "benchmark": "simulation_kernel",
        **environment(),
        "workloads": workloads,
        "sim_events": total["events"],
        "scalar_s": round(total["scalar_s"], 4),
        "batched_s": round(total["batched_s"], 4),
        "events_per_sec_scalar": round(total["events"] / total["scalar_s"], 1),
        "events_per_sec_batched": round(total["events"] / total["batched_s"], 1),
        "speedup": speedup,
        "identity_checks": {
            "workload_outputs": all(
                w["identical"] for w in workloads.values()
            ),
            "probe_patterns": probe_ok,
            "fork_and_spawn_subprocesses": subprocess_ok,
        },
        "identical_results": identical,
    }
    if gate is not None:
        report["gate"] = gate
        report["gate_passed"] = bool(
            identical and speedup is not None and speedup >= gate
        )
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def test_kernel_speedup(benchmark):
    """One measured round: scalar vs batched kernel, bit-identity checked."""
    from conftest import run_once

    report = run_once(benchmark, run_benchmark)
    print()
    print(json.dumps(report, indent=2))
    assert report["identical_results"], "batched kernel diverged from scalar"
    assert report["speedup"] >= 5.0, (
        f"expected >=5x aggregate kernel speedup, got {report['speedup']}x"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_REPORT)
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail (exit 1) if aggregate speedup < GATE or identity fails",
    )
    args = parser.parse_args()
    report = run_benchmark(out=args.out, gate=args.gate)
    print(json.dumps(report, indent=2))
    if not report["identical_results"]:
        print("FAIL: batched kernel diverged from the scalar reference")
        return 1
    line = (
        f"\n{report['sim_events']} events | scalar {report['scalar_s']}s | "
        f"batched {report['batched_s']}s | speedup {report['speedup']}x | "
        f"report -> {args.out}"
    )
    print(line)
    if args.gate is not None and not report.get("gate_passed"):
        print(f"FAIL: speedup {report['speedup']}x below gate {args.gate}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
