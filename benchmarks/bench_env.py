"""Shared environment fields for every ``BENCH_*.json`` report.

Every benchmark emitter records the detected CPU count next to the
``degraded`` flag, so a 1-core container masking parallel speedups (or
rendering single-core gates conservative) is machine-readable in every
report, not just the parallel ones.
"""

from __future__ import annotations

import os
from typing import Dict, Optional


def environment(parallel_speedup: Optional[float] = None) -> Dict[str, object]:
    """The ``cpu_count``/``degraded`` pair for one benchmark report.

    A host without spare cores cannot speed anything up: a sub-1x
    parallel "speedup" there is pool overhead, not a regression.
    ``degraded`` flags both conditions (fewer than two cores, or a
    measured parallel speedup below 1x) so downstream consumers never
    read the numbers as a real slowdown.
    """
    cpu_count = os.cpu_count() or 1
    degraded = cpu_count < 2 or (
        parallel_speedup is not None and parallel_speedup < 1.0
    )
    return {"cpu_count": cpu_count, "degraded": degraded}
