"""Serial-vs-parallel profiling benchmark → ``BENCH_profile.json``.

Profiles the benchmark services three ways and records wall clock for
each phase:

- **serial** — the fanned-out pipeline run inline (``workers=1``),
  bit-identical to the live :class:`~repro.core.rhythm.Rhythm` pipeline;
- **parallel** — the same sweep tasks and Algorithm-1 walks through the
  persistent process pool;
- **cold / warm cache** — against a throwaway disk store, asserting the
  warm re-run executes *zero* sweep simulations.

Artifacts from every path are checked bit-identical before anything is
reported. Run standalone (``PYTHONPATH=src python
benchmarks/bench_profile.py [--workers 4] [--out BENCH_profile.json]``)
or via ``pytest benchmarks/bench_profile.py --benchmark-only``.

The ≥2.5× speedup expectation only applies on hardware with enough
cores; single-core hosts report ``degraded: true`` (pool overhead with
no spare core to absorb it) so the sub-1× ratio is never misread as a
regression.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional

from bench_env import environment
from repro.cache.store import CacheStore
from repro.parallel.pool import get_pool, shutdown_pool
from repro.parallel.profile import (
    ProfileStats,
    clear_profile_memo,
    profile_service_parallel,
)
from repro.workloads.catalog import LC_CATALOG

#: Services to profile: multi-Servpod ones so the per-pod Algorithm-1
#: walks have something to fan out.
BENCH_SERVICES = ("E-commerce", "Redis")
DEFAULT_REPORT = "BENCH_profile.json"


def _profile_all(
    workers: int, cache: Optional[CacheStore] = None, stats: Optional[ProfileStats] = None
) -> List[object]:
    """Profile every benchmark service; memo cleared so nothing is reused."""
    clear_profile_memo()
    return [
        profile_service_parallel(
            LC_CATALOG[name](), seed=0, profiling_mode="direct",
            probe_slacklimits=True, workers=workers, cache=cache, stats=stats,
        )
        for name in BENCH_SERVICES
    ]


def run_benchmark(
    workers: int = 4, out: Optional[str] = DEFAULT_REPORT
) -> Dict[str, object]:
    """Time serial/parallel/cached profiling; write and return the report."""
    t0 = time.perf_counter()
    serial = _profile_all(workers=1)
    serial_s = time.perf_counter() - t0

    # Pool startup is a one-time per-process cost; measure it apart from
    # the steady-state profiling fan-out.
    t0 = time.perf_counter()
    if workers > 1:
        get_pool(workers)
    pool_startup_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = _profile_all(workers=workers)
    parallel_s = time.perf_counter() - t0

    cache_dir = tempfile.mkdtemp(prefix="rhythm-bench-profile-")
    try:
        store = CacheStore(cache_dir)
        cold_stats = ProfileStats()
        t0 = time.perf_counter()
        cold = _profile_all(workers=workers, cache=store, stats=cold_stats)
        cold_s = time.perf_counter() - t0
        warm_stats = ProfileStats()
        t0 = time.perf_counter()
        warm = _profile_all(workers=workers, cache=store, stats=warm_stats)
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = serial == parallel == cold == warm
    warm_executed = warm_stats.sweep_executed + warm_stats.slack_executed
    speedup = round(serial_s / parallel_s, 3) if parallel_s > 0 else None
    env = environment(parallel_speedup=speedup)
    cpu_count = env["cpu_count"]
    degraded = env["degraded"]
    from repro.sim.kernel import resolve_kernel

    report: Dict[str, object] = {
        "benchmark": "parallel_profiling_pipeline",
        "kernel": resolve_kernel(),
        "services": list(BENCH_SERVICES),
        "sweep_points_per_service": 50,
        "cpu_count": cpu_count,
        "workers": workers,
        "phases": {
            "serial_s": round(serial_s, 4),
            "pool_startup_s": round(pool_startup_s, 4),
            "parallel_s": round(parallel_s, 4),
            "cold_cache_s": round(cold_s, 4),
            "warm_cache_s": round(warm_s, 4),
        },
        "speedup": speedup,
        "degraded": degraded,
        "warm_sweep_executed": warm_stats.sweep_executed,
        "warm_slack_executed": warm_stats.slack_executed,
        "warm_artifact_hits": warm_stats.artifact_cache_hits,
        "warm_zero_simulations": warm_executed == 0,
        "identical_results": identical,
    }
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def test_parallel_profiling_speedup(benchmark):
    """One measured round: serial vs pooled profiling plus cache warmup."""
    from conftest import run_once

    report = run_once(benchmark, run_benchmark, workers=4)
    print()
    print(json.dumps(report, indent=2))
    assert report["identical_results"], "parallel profiling diverged from serial"
    assert report["warm_zero_simulations"], (
        f"warm cache re-ran simulations: {report['warm_sweep_executed']} sweep, "
        f"{report['warm_slack_executed']} slacklimit"
    )
    cpus = report["cpu_count"] or 1
    if cpus >= 4:
        assert report["speedup"] >= 2.5, (
            f"expected >=2.5x profiling speedup with 4 workers on {cpus} "
            f"CPUs, got {report['speedup']}x"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=DEFAULT_REPORT)
    args = parser.parse_args()
    report = run_benchmark(workers=args.workers, out=args.out)
    print(json.dumps(report, indent=2))
    shutdown_pool()
    if not report["identical_results"]:
        print("FAIL: parallel profiling diverged from serial")
        return 1
    if not report["warm_zero_simulations"]:
        print("FAIL: warm cache re-ran simulations")
        return 1
    note = " [degraded: not enough cores to parallelize]" if report["degraded"] else ""
    phases = report["phases"]
    print(
        f"\nprofiling: serial {phases['serial_s']}s | parallel "
        f"{phases['parallel_s']}s ({report['workers']} workers, "
        f"{report['cpu_count']} CPUs) | speedup {report['speedup']}x{note} | "
        f"warm cache {phases['warm_cache_s']}s, zero simulations | "
        f"report -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
