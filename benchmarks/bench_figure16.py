"""Figure 16 — Rhythm on microservices (SNMS, §5.3.2)."""

from __future__ import annotations

from repro.experiments.figures.figure16 import (
    average_rhythm_gain_over_heracles,
    run_figure16,
)
from repro.experiments.report import render_table
from repro.experiments.runner import get_rhythm
from repro.workloads.microservices import snms_service

from conftest import run_once


def test_figure16_microservices(benchmark):
    rows = run_once(benchmark, run_figure16)

    print()
    print(render_table(
        ["BE", "load", "EMU solo", "EMU +Heracles", "EMU +Rhythm"],
        [[r.be_job, r.load, round(r.emu_solo, 3), round(r.emu_heracles, 3),
          round(r.emu_rhythm, 3)] for r in rows],
        title="Figure 16 — SNMS stacked EMU (solo / Heracles / Rhythm)",
    ))
    for metric in ("emu", "cpu", "membw"):
        gain = average_rhythm_gain_over_heracles(rows, metric)
        print(f"avg Rhythm-over-Heracles {metric} gain: {gain:+.2%}")

    # Co-location always beats the solo run; Rhythm at least matches
    # Heracles on EMU on average (paper: +14.3%).
    for r in rows:
        assert r.emu_heracles >= r.emu_solo - 1e-9
        assert r.emu_rhythm >= r.emu_solo - 1e-9
    assert average_rhythm_gain_over_heracles(rows, "emu") > 0.0

    # SNMS profiles via its built-in jaeger tracer, and its contributions
    # order as the paper reports: userservice > mediaservice > frontend.
    rhythm = get_rhythm(snms_service(), profiling_mode="jaeger")
    normalized = rhythm.contributions().normalized()
    assert (
        normalized["userservice"]
        > normalized["mediaservice"]
        > normalized["frontend"]
    )
