"""Figure 2 — inconsistent interference tolerance of LC components (§2)."""

from __future__ import annotations

from repro.experiments.figures.figure2 import increase_matrix, run_figure2
from repro.experiments.report import render_heatmap

from conftest import run_once


def test_figure2_component_characterization(benchmark):
    rows = run_once(benchmark, run_figure2)

    for service in ("Redis", "E-commerce"):
        matrix = increase_matrix(rows, service)
        kinds = sorted(next(iter(matrix.values())))
        print()
        print(render_heatmap(
            sorted(matrix), [k[:14] for k in kinds],
            {(comp, kind[:14]): matrix[comp][kind]
             for comp in matrix for kind in kinds},
            title=f"Figure 2 — p99 increase (%) averaged over loads: {service}",
        ))

    redis = increase_matrix(rows, "Redis")
    ecom = increase_matrix(rows, "E-commerce")

    # Master is far more sensitive than Slave under LLC pressure (the
    # paper reports a > 28x gap for stream-llc(big)).
    assert redis["master"]["stream_llc(big)"] > 20 * redis["slave"]["stream_llc(big)"]
    # ... and under DRAM pressure.
    assert redis["master"]["stream_dram(big)"] > 5 * redis["slave"]["stream_dram(big)"]
    # MySQL >> Tomcat for stream-dram(big); Tomcat >> MySQL for DVFS.
    assert ecom["mysql"]["stream_dram(big)"] > 2 * ecom["tomcat"]["stream_dram(big)"]
    assert ecom["tomcat"]["DVFS"] > 2 * ecom["mysql"]["DVFS"]
    # Big variants hurt more than small ones, everywhere.
    for matrix in (redis, ecom):
        for comp in matrix:
            assert matrix[comp]["stream_dram(big)"] > matrix[comp]["stream_dram(small)"]
            assert matrix[comp]["stream_llc(big)"] > matrix[comp]["stream_llc(small)"]

    # Degradation grows with load in every (component, interference) group
    # (up to sampling noise on near-immune groups, where the increase is a
    # fraction of a percent either way).
    by_group = {}
    for row in rows:
        by_group.setdefault((row.service, row.component, row.interference), []).append(
            (row.load, row.increase_pct)
        )
    for series in by_group.values():
        series.sort()
        assert series[-1][1] >= series[0][1] - 1.0
