"""Shared machinery for the per-figure benchmarks.

Every benchmark regenerates one paper figure/table at simulation scale,
prints the same rows/series the paper reports, and asserts the *shape*
expectations listed in DESIGN.md §4. Expensive grids that feed several
figures (9-11 share one grid; 12-14 share another) are computed once per
session and cached here.

Run with ``pytest benchmarks/ --benchmark-only``. Grid cells fan out to
the parallel grid engine; set ``RHYTHM_WORKERS`` to bound the pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.bejobs.catalog import evaluation_be_jobs
from repro.experiments.colocation import ColocationConfig
from repro.experiments.figures.figure9_11 import (
    SHOWCASED_SERVPODS,
    ServpodCell,
    run_servpod_grid,
)
from repro.experiments.figures.figure12_14 import ServiceCell, run_service_grid
from repro.experiments.figures.figure15 import ProductionCell, run_figure15
from repro.experiments.runner import clear_rhythm_cache
from repro.parallel.grid import resolve_workers

#: Loads used by the constant-load grids (the paper's x-axis).
GRID_LOADS = (0.05, 0.25, 0.45, 0.65, 0.85)

#: Per-cell run length for constant-load grids (simulation seconds).
GRID_CONFIG = ColocationConfig(duration_s=60.0)

#: Pool size for the shared grids (RHYTHM_WORKERS env var, else CPUs).
GRID_WORKERS = resolve_workers()

_cache: Dict[str, object] = {}


def servpod_grid() -> List[ServpodCell]:
    """The Figures 9-11 grid (cached once per session)."""
    if "servpod" not in _cache:
        _cache["servpod"] = run_servpod_grid(
            servpods=SHOWCASED_SERVPODS,
            be_specs=evaluation_be_jobs(),
            loads=GRID_LOADS,
            config=GRID_CONFIG,
            workers=GRID_WORKERS,
        )
    return _cache["servpod"]


def service_grid() -> List[ServiceCell]:
    """The Figures 12-14 grid (cached once per session)."""
    if "service" not in _cache:
        _cache["service"] = run_service_grid(
            loads=GRID_LOADS, config=GRID_CONFIG, workers=GRID_WORKERS
        )
    return _cache["service"]


def production_grid() -> List[ProductionCell]:
    """The Figure 15 production grid (cached once per session)."""
    if "production" not in _cache:
        _cache["production"] = run_figure15(workers=GRID_WORKERS)
    return _cache["production"]


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured round (experiments are
    deterministic; repeating them only re-measures the same work)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def _fresh_pipeline_cache():
    clear_rhythm_cache()
    yield
