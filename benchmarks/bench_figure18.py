"""Figure 18 — BE throughput vs loadlimit/slacklimit setting (§5.4.2)."""

from __future__ import annotations

from repro.experiments.figures.figure18 import normalized_throughput, run_figure18
from repro.experiments.report import render_table

from conftest import run_once


def test_figure18_threshold_tradeoff(benchmark):
    rows = run_once(benchmark, run_figure18)

    print()
    print(render_table(
        ["varied", "level", "value", "BE tput", "normalized"],
        [[r.varied, f"{r.level:.0%}", round(r.value, 3), round(r.be_throughput, 3),
          round(normalized_throughput(rows, r.varied)[r.level], 3)]
         for r in rows],
        title="Figure 18 — BE throughput vs threshold setting",
    ))

    # Loadlimit: throughput rises with the limit while it stays <= the
    # derived value (more co-location headroom before suspension).
    loadlimit_rows = {r.level: r for r in rows if r.varied == "loadlimit"}
    assert loadlimit_rows[0.7].be_throughput <= loadlimit_rows[1.0].be_throughput

    # The 130% loadlimit cell is absent when it would exceed 1.0 (the
    # paper's "-" cells).
    assert 1.3 not in loadlimit_rows or loadlimit_rows[1.3].value <= 1.0

    # The derived setting (100%) is violation-free for both thresholds.
    for varied in ("slacklimit", "loadlimit"):
        derived = next(r for r in rows if r.varied == varied and r.level == 1.0)
        assert derived.sla_violations == 0
        assert derived.be_kills == 0
