"""Table 2 — SLA violations and BE kills when detuning the thresholds."""

from __future__ import annotations

from repro.experiments.figures.figure18 import run_figure18
from repro.experiments.report import render_table

from conftest import run_once


def test_table2_sla_violations_and_kills(benchmark):
    rows = run_once(benchmark, run_figure18)

    print()
    print(render_table(
        ["Varied", "Level", "Value", "SLA violations", "BE kills"],
        [[r.varied, f"{r.level:.0%}", round(r.value, 3), r.sla_violations,
          r.be_kills] for r in rows],
        title="Table 2 — safety cost of detuned thresholds",
    ))

    by = {(r.varied, r.level): r for r in rows}

    # The derived thresholds (100% level) are safe.
    assert by[("slacklimit", 1.0)].sla_violations == 0
    assert by[("loadlimit", 1.0)].sla_violations == 0

    # Raising the loadlimit past the derived value (110%/120%) lets BE
    # jobs run into MySQL's danger zone: violations and kills appear
    # (paper: 12 and 14 violations).
    overshoot = [by[("loadlimit", lvl)] for lvl in (1.1, 1.2) if ("loadlimit", lvl) in by]
    assert sum(r.sla_violations for r in overshoot) > 0
    assert sum(r.be_kills for r in overshoot) > 0

    # Raising the slacklimit (more conservative) never violates.
    for lvl in (1.1, 1.2, 1.3):
        if ("slacklimit", lvl) in by:
            assert by[("slacklimit", lvl)].sla_violations == 0

    # Violations and kills arrive together (a violation triggers StopBE).
    for r in rows:
        if r.sla_violations > 0:
            assert r.be_kills > 0
