"""Serial-vs-parallel grid engine benchmark → ``BENCH_parallel.json``.

Runs a reduced Figure 9–11 grid (2 services × 3 BE jobs × 3 loads, each
cell simulated under Rhythm *and* Heracles) once inline (``workers=1``)
and once on the process pool, verifies the results are bit-identical,
and records wall clock, simulation events/sec and the speedup.

Profiling happens once in the parent before either timed run, so both
timings measure pure grid execution — exactly what the pool parallelises.

Run standalone (``PYTHONPATH=src python benchmarks/bench_parallel.py
[--workers 4] [--out BENCH_parallel.json]``) or via
``pytest benchmarks/bench_parallel.py --benchmark-only``.

The ≥2× speedup expectation only applies on hardware with enough cores;
the report records ``cpu_count`` so single-core CI runs stay honest.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

from repro.bejobs.catalog import evaluation_be_jobs
from bench_env import environment
from repro.experiments.colocation import ColocationConfig
from repro.parallel.grid import (
    GridCell,
    comparison_fingerprint,
    profile_services,
    run_comparison_grid,
)
from repro.workloads.catalog import LC_CATALOG

#: The reduced Figure 9-11 grid: 2 services x 3 BE jobs x 3 loads, at
#: double the usual per-cell duration so pool startup amortizes.
BENCH_SERVICES = ("E-commerce", "Redis")
BENCH_LOADS = (0.25, 0.45, 0.65)
BENCH_BE_JOBS = 3
BENCH_DURATION_S = 120.0
DEFAULT_REPORT = "BENCH_parallel.json"


def build_cells(seed: int = 0) -> List[GridCell]:
    """The benchmark's cell list (deterministic order)."""
    be_specs = evaluation_be_jobs()[:BENCH_BE_JOBS]
    return [
        GridCell(LC_CATALOG[name](), be, load, seed=seed)
        for name in BENCH_SERVICES
        for be in be_specs
        for load in BENCH_LOADS
    ]


def run_benchmark(
    workers: int = 4, seed: int = 0, out: Optional[str] = DEFAULT_REPORT
) -> Dict[str, object]:
    """Time the grid serial and parallel; write and return the report."""
    from repro.parallel.pool import get_pool

    config = ColocationConfig(duration_s=BENCH_DURATION_S)
    cells = build_cells(seed)

    # Profile once, up front: both timed runs ship the same artifacts.
    t0 = time.perf_counter()
    artifacts = profile_services(cells)
    profiling_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = run_comparison_grid(
        cells, config=config, workers=1, artifacts=artifacts
    )
    serial_s = time.perf_counter() - t0

    # The pool is persistent (one per process), so its startup is a
    # one-time cost — measure it apart from steady-state grid execution.
    t0 = time.perf_counter()
    if workers > 1:
        get_pool(workers)
    pool_startup_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_comparison_grid(
        cells, config=config, workers=workers, artifacts=artifacts
    )
    parallel_s = time.perf_counter() - t0

    identical = [comparison_fingerprint(r) for r in serial] == [
        comparison_fingerprint(r) for r in parallel
    ]
    events = sum(r.rhythm.events_fired + r.heracles.events_fired for r in serial)
    speedup = round(serial_s / parallel_s, 3) if parallel_s > 0 else None
    env = environment(parallel_speedup=speedup)
    cpu_count = env["cpu_count"]
    degraded = env["degraded"]
    from repro.sim.kernel import resolve_kernel

    report: Dict[str, object] = {
        "benchmark": "parallel_grid_engine",
        "kernel": resolve_kernel(),
        "grid": {
            "services": list(BENCH_SERVICES),
            "be_jobs": BENCH_BE_JOBS,
            "loads": list(BENCH_LOADS),
            "cells": len(cells),
            "simulations": 2 * len(cells),
            "duration_s_per_cell": BENCH_DURATION_S,
        },
        "cpu_count": cpu_count,
        "workers": workers,
        "profiling_s": round(profiling_s, 4),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "phases": {
            "profiling_s": round(profiling_s, 4),
            "pool_startup_s": round(pool_startup_s, 4),
            "serial_grid_s": round(serial_s, 4),
            "parallel_grid_s": round(parallel_s, 4),
        },
        "speedup": speedup,
        "degraded": degraded,
        "sim_events": events,
        "events_per_sec_serial": round(events / serial_s, 1) if serial_s > 0 else None,
        "events_per_sec_parallel": (
            round(events / parallel_s, 1) if parallel_s > 0 else None
        ),
        "identical_results": identical,
    }
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def test_parallel_grid_speedup(benchmark):
    """One measured round: serial vs 4-worker parallel, bit-identity checked."""
    from conftest import run_once

    report = run_once(benchmark, run_benchmark, workers=4)
    print()
    print(json.dumps(report, indent=2))
    assert report["identical_results"], "parallel results diverged from serial"
    cpus = report["cpu_count"] or 1
    if cpus >= 4:
        assert report["speedup"] >= 2.0, (
            f"expected >=2x speedup with 4 workers on {cpus} CPUs, "
            f"got {report['speedup']}x"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=DEFAULT_REPORT)
    args = parser.parse_args()
    report = run_benchmark(workers=args.workers, seed=args.seed, out=args.out)
    print(json.dumps(report, indent=2))
    if not report["identical_results"]:
        print("FAIL: parallel results diverged from serial")
        return 1
    note = " [degraded: not enough cores to parallelize]" if report["degraded"] else ""
    print(
        f"\n{report['grid']['simulations']} simulations | "
        f"serial {report['serial_s']}s | parallel {report['parallel_s']}s "
        f"({report['workers']} workers, {report['cpu_count']} CPUs) | "
        f"speedup {report['speedup']}x{note} | report -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
