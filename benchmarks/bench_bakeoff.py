"""Controller bake-off engine benchmark → ``BENCH_bakeoff.json``.

Measures the single-pass multi-controller evaluation engine end to end:

- ``independent`` vs ``bakeoff``: three controllers (Heracles,
  interference-scoring, predictive) evaluated on one scenario — first
  as three independent reference runs, then as one shared-physics
  :class:`~repro.sim.kernel.BakeoffKernel` pass. The shared pass must be
  >=2x faster in aggregate and reproduce every member's cell digest
  bit-identically (``identical_results``).
- ``cached``: the same roster against a private store — the cold run
  writes one ``bakeoff-cell`` entry per member, the warm re-run must
  execute ZERO shared passes and return identical digests.

Timing takes the best of five rounds per side with the cyclic GC
paused inside each round (the work is deterministic; the repeats and
GC hygiene only shed scheduler and collector noise, which dominates
run-to-run variance on small shared CPU quotas).

Run standalone (``PYTHONPATH=src python benchmarks/bench_bakeoff.py
[--out BENCH_bakeoff.json] [--gate 2.0]``) or via
``pytest benchmarks/bench_bakeoff.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import gc
import json
import shutil
import tempfile
import time
from typing import Dict, Optional

from bench_env import environment
from repro.cache import CacheStore
from repro.experiments.bakeoff import (
    BakeoffConfig,
    bakeoff_scenario_grid,
    heracles_member,
    interference_member,
    predictive_member,
    run_bakeoff,
    run_member_reference,
)

DEFAULT_REPORT = "BENCH_bakeoff.json"
DEFAULT_GATE = None

#: The probe scenario: ten simulated minutes at a load where the three
#: rival controllers keep agreeing (full physics sharing, zero forks) —
#: the case the single-pass engine is built for.
BENCH_DURATION_S = 600.0
BENCH_LOAD = 0.30
BENCH_BE_JOB = "stream-llc"
BENCH_SEED = 11
BENCH_ROUNDS = 5


def _members(service: str):
    return [
        heracles_member(service),
        interference_member(),
        predictive_member(),
    ]


def run_benchmark(
    out: Optional[str] = DEFAULT_REPORT,
    gate: Optional[float] = DEFAULT_GATE,
) -> Dict[str, object]:
    """Run the independent-vs-shared and cold/warm sequences and report."""
    service = "Redis"
    members = _members(service)
    scenarios = bakeoff_scenario_grid(
        service=service,
        loads=(BENCH_LOAD,),
        be_jobs=(BENCH_BE_JOB,),
        duration_s=BENCH_DURATION_S,
        seed=BENCH_SEED,
    )
    config = BakeoffConfig(duration_s=BENCH_DURATION_S)

    # Warm-up: both paths once, outside the timed rounds.
    references = {
        member.name: run_member_reference(scenarios[0], member, config)
        for member in members
    }
    shared = run_bakeoff(scenarios, members, config=config, cache=None)

    independent_s = float("inf")
    for _ in range(BENCH_ROUNDS):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            for scenario in scenarios:
                for member in members:
                    run_member_reference(scenario, member, config)
            independent_s = min(independent_s, time.perf_counter() - t0)
        finally:
            gc.enable()

    bakeoff_s = float("inf")
    for _ in range(BENCH_ROUNDS):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            shared = run_bakeoff(
                scenarios, members, config=config, cache=None
            )
            bakeoff_s = min(bakeoff_s, time.perf_counter() - t0)
        finally:
            gc.enable()

    identical = all(
        cell.digest == references[cell.member].digest for cell in shared.cells
    )
    speedup = round(independent_s / bakeoff_s, 2) if bakeoff_s > 0 else None

    cache_dir = tempfile.mkdtemp(prefix="rhythm-bench-bakeoff-")
    try:
        store = CacheStore(directory=cache_dir)
        cold = run_bakeoff(scenarios, members, config=config, cache=store)
        warm = run_bakeoff(scenarios, members, config=config, cache=store)
        disk = store.stats()
        cached = {
            "cold": {
                "hits": cold.cache.hits,
                "misses": cold.cache.misses,
                "passes": cold.passes,
            },
            "warm": {
                "hits": warm.cache.hits,
                "misses": warm.cache.misses,
                "passes": warm.passes,
            },
            "warm_zero_passes": warm.passes == 0,
            "warm_identical_digest": warm.digest == cold.digest,
            "store_entries": disk.entries,
            "store_bytes": disk.total_bytes,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    report: Dict[str, object] = {
        "benchmark": "bakeoff",
        **environment(),
        "roster": {
            "members": [member.name for member in members],
            "service": service,
            "load": BENCH_LOAD,
            "be_job": BENCH_BE_JOB,
            "duration_s": BENCH_DURATION_S,
            "seed": BENCH_SEED,
        },
        "independent_s": round(independent_s, 4),
        "bakeoff_s": round(bakeoff_s, 4),
        "speedup": speedup,
        "identical_results": identical,
        "shared_pass": {
            "passes": shared.passes,
            "forks": shared.forks,
            "merges": shared.merges,
            "branch_ticks": shared.branch_ticks,
            "member_ticks": shared.member_ticks,
            "shared_fraction": round(shared.shared_fraction, 4),
        },
        "cached": cached,
    }
    correct = bool(
        identical
        and cached["warm_zero_passes"]
        and cached["warm_identical_digest"]
    )
    report["correct"] = correct
    if gate is not None:
        report["gate"] = gate
        report["gate_passed"] = bool(
            correct and speedup is not None and speedup >= gate
        )
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def test_bakeoff_speedup(benchmark):
    """One measured round: >=2x aggregate, bit-identical, warm at 0 passes."""
    from conftest import run_once

    report = run_once(benchmark, run_benchmark)
    print()
    print(json.dumps(report, indent=2))
    assert report["correct"], "bakeoff diverged from reference or re-simulated"
    assert report["speedup"] >= 2.0, (
        f"expected >=2x aggregate bake-off speedup, got {report['speedup']}x"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_REPORT)
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail (exit 1) if aggregate speedup < GATE or any check fails",
    )
    args = parser.parse_args()
    report = run_benchmark(out=args.out, gate=args.gate)
    print(json.dumps(report, indent=2))
    if not report["correct"]:
        print("FAIL: bake-off diverged from the reference or re-simulated")
        return 1
    print(
        f"\nindependent {report['independent_s']}s | "
        f"bakeoff {report['bakeoff_s']}s | speedup {report['speedup']}x | "
        f"{report['shared_pass']['shared_fraction']:.0%} physics shared | "
        f"report -> {args.out}"
    )
    if args.gate is not None and not report.get("gate_passed"):
        print(
            f"FAIL: aggregate speedup {report['speedup']}x "
            f"below gate {args.gate}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
