"""Correlated fault-storm benchmark → ``BENCH_storm.json``.

Measures the storm pipeline against the zone-granular fleet cache:

- ``cold`` vs ``warm``: the same seeded storm overlaid on the same
  fleet, run twice against one private store. The warm run must
  execute ZERO simulations and reproduce the cold ``FleetResult.digest``
  bit-identically — a storm is just per-instance fault schedules, so
  it caches like any other fleet.
- ``resharded``: the stormed fleet under different shard counts.
  Shards are a wall-clock knob, never a cache-key coordinate, so every
  shard count must be all-hits with an identical digest.
- ``one_event``: the storm minus its smallest-blast event. Only the
  zones inside that event's blast radius may re-simulate; every other
  zone must hit the cold run's entries.

Run standalone (``PYTHONPATH=src python benchmarks/bench_storm.py
[--out BENCH_storm.json] [--gate 10.0]``) or via
``pytest benchmarks/bench_storm.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import shutil
import tempfile
import time
from typing import Dict, Optional

from bench_env import environment
from repro.cache import CacheStore
from repro.experiments.fleet import FleetConfig, FleetExperiment, alibaba_fleet
from repro.experiments.scenarios import storm_fleet
from repro.faults.topology import CorrelatedFaultSchedule, FleetTopology

DEFAULT_REPORT = "BENCH_storm.json"
DEFAULT_GATE = None

#: The probe fleet: enough zones that blast radii are a strict subset
#: and the warm-vs-cold gap is solidly measurable.
BENCH_MACHINES = 48
BENCH_DURATION_S = 240.0
BENCH_SEED = 11
BENCH_STORM_SEED = 7
BENCH_SHARDS = 4
BENCH_ZONE_SIZE = 4
BENCH_EVENTS_PER_MINUTE = 1.0
RESHARD_COUNTS = (1, 2, 8)


def _stats(result) -> Dict[str, object]:
    return {
        "hits": result.cache.hits,
        "misses": result.cache.misses,
        "skipped": result.cache.skipped,
        "zero_simulations": result.cache.simulated == 0,
    }


def run_benchmark(
    out: Optional[str] = DEFAULT_REPORT,
    gate: Optional[float] = DEFAULT_GATE,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """Run the cold/warm/resharded/one-event sequence and report."""
    config = FleetConfig(
        duration_s=BENCH_DURATION_S,
        shards=BENCH_SHARDS,
        workers=workers,
        zone_size=BENCH_ZONE_SIZE,
    )
    fleet = alibaba_fleet(
        BENCH_MACHINES,
        policy="heracles",
        duration_s=BENCH_DURATION_S,
        seed=BENCH_SEED,
        config=config,
    )
    topology = FleetTopology.generate(
        BENCH_STORM_SEED,
        n_instances=len(fleet.instances),
        zone_size=BENCH_ZONE_SIZE,
    )
    storm = CorrelatedFaultSchedule.generate(
        BENCH_STORM_SEED,
        topology,
        BENCH_DURATION_S,
        events_per_minute=BENCH_EVENTS_PER_MINUTE,
    )
    stormed = storm_fleet(fleet, storm)

    # The event whose blast radius is smallest and a strict subset of
    # the fleet drives the one-event incrementality check.
    dropped = min(storm.events, key=lambda e: len(storm.blast_zones(e)))
    dropped_zones = storm.blast_zones(dropped)
    reduced = dataclasses.replace(
        storm, events=tuple(e for e in storm.events if e != dropped)
    )
    reduced_fleet = storm_fleet(fleet, reduced)

    cache_dir = tempfile.mkdtemp(prefix="rhythm-bench-storm-")
    store = CacheStore(directory=cache_dir)
    try:
        t0 = time.perf_counter()
        cold = stormed.run(cache=store)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = stormed.run(cache=store)
        warm_s = time.perf_counter() - t0

        resharded = {}
        for shards in RESHARD_COUNTS:
            res = FleetExperiment(
                stormed.instances, dataclasses.replace(config, shards=shards)
            ).run(cache=store)
            resharded[str(shards)] = {
                **_stats(res),
                "identical_digest": res.digest == cold.digest,
            }

        one_event = reduced_fleet.run(cache=store)

        disk = store.stats()
        speedup = round(cold_s / warm_s, 1) if warm_s > 0 else None
        zones = cold.cache.total
        report: Dict[str, object] = {
            "benchmark": "fleet_storm",
            **environment(),
            "fleet": {
                "machines": cold.n_machines,
                "instances": cold.n_instances,
                "zones": zones,
                "duration_s": BENCH_DURATION_S,
                "shards": BENCH_SHARDS,
                "zone_size": BENCH_ZONE_SIZE,
            },
            "storm": {
                "seed": BENCH_STORM_SEED,
                "events": len(storm),
                "events_per_minute": BENCH_EVENTS_PER_MINUTE,
                "affected_zones": len(storm.affected_zones()),
                "counts_by_kind": dict(sorted(storm.counts_by_kind().items())),
            },
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": speedup,
            "cold": _stats(cold),
            "warm": _stats(warm),
            "warm_identical_digest": warm.digest == cold.digest,
            "resharded": resharded,
            "one_event": {
                **_stats(one_event),
                "dropped_event": f"{dropped.kind.value} {dropped.domain}",
                "dropped_blast_zones": sorted(dropped_zones),
                "only_blast_radius": (
                    one_event.cache.misses == len(dropped_zones)
                    and one_event.cache.hits == zones - len(dropped_zones)
                ),
            },
            "store_entries": disk.entries,
            "store_bytes": disk.total_bytes,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    correct = bool(
        report["warm"]["zero_simulations"]
        and report["warm_identical_digest"]
        and all(
            entry["zero_simulations"] and entry["identical_digest"]
            for entry in resharded.values()
        )
        and report["one_event"]["only_blast_radius"]
        and len(dropped_zones) < zones
    )
    report["correct"] = correct
    if gate is not None:
        report["gate"] = gate
        report["gate_passed"] = bool(
            correct and speedup is not None and speedup >= gate
        )
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def test_storm_cache(benchmark):
    """One measured round: warm zero-sim, shard-invariant, blast-exact."""
    from conftest import run_once

    report = run_once(benchmark, run_benchmark)
    print()
    print(json.dumps(report, indent=2))
    assert report["correct"], "storm broke digests or over-invalidated zones"
    assert report["speedup"] >= 10.0, (
        f"expected >=10x warm storm re-run, got {report['speedup']}x"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_REPORT)
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail (exit 1) if warm speedup < GATE or any check fails",
    )
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()
    report = run_benchmark(out=args.out, gate=args.gate, workers=args.workers)
    print(json.dumps(report, indent=2))
    if not report["correct"]:
        print("FAIL: storm broke digests or over-invalidated zones")
        return 1
    print(
        f"\ncold {report['cold_s']}s | warm {report['warm_s']}s | "
        f"speedup {report['speedup']}x | "
        f"{report['storm']['events']} events over "
        f"{report['fleet']['zones']} zones, one-event re-simulated "
        f"{len(report['one_event']['dropped_blast_zones'])} | "
        f"report -> {args.out}"
    )
    if args.gate is not None and not report.get("gate_passed"):
        print(f"FAIL: warm speedup {report['speedup']}x below gate {args.gate}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
