"""Figure 6 — solo-run sojourn means and normalized CoV (E-commerce)."""

from __future__ import annotations

from repro.experiments.figures.figure6 import run_figure6
from repro.experiments.report import render_table

from conftest import run_once


def test_figure6_sojourn_statistics(benchmark):
    data = run_once(benchmark, run_figure6)

    pods = list(data.mean_sojourns)
    sample = range(0, len(data.loads), 4)
    print()
    print(render_table(
        ["load"] + pods + ["p99"],
        [[data.loads[j]] + [round(data.mean_sojourns[p][j], 2) for p in pods]
         + [round(data.p99[j], 1)] for j in sample],
        title="Figure 6a — mean sojourn (ms) per Servpod vs load",
    ))
    print(render_table(
        ["load"] + pods,
        [[data.loads[j]] + [round(data.normalized_cov[p][j], 3) for p in pods]
         for j in sample],
        title="Figure 6b — normalized CoV share per Servpod vs load",
    ))

    # HAProxy: < 5% of the latency but > 20% of the normalized variance.
    assert data.latency_share("haproxy") < 0.05
    assert data.variance_share("haproxy") > 0.20
    # Amoeba is small and the most stable of the four.
    assert data.latency_share("amoeba") < 0.15
    assert data.variance_share("amoeba") == min(
        data.variance_share(p) for p in pods
    )
    # MySQL's mean overtakes Tomcat's at high load...
    assert data.mean_sojourns["mysql"][-1] > data.mean_sojourns["tomcat"][-1]
    # ... and MySQL stays noisier than Tomcat throughout.
    assert data.variance_share("mysql") > data.variance_share("tomcat")
    # The p99 curve rises with load.
    assert data.p99[-1] > 3 * data.p99[0]
