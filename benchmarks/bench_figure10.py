"""Figure 10 — CPU utilisation at the showcased Servpods (shares the
Figures 9-11 grid, computed once per session)."""

from __future__ import annotations

from repro.experiments.figures.figure9_11 import SHOWCASED_SERVPODS, average_gain
from repro.experiments.report import render_heatmap

from conftest import run_once, servpod_grid


def test_figure10_cpu_utilisation(benchmark):
    rows = run_once(benchmark, servpod_grid)

    print()
    for system in ("Rhythm", "Heracles"):
        values = {}
        for r in rows:
            if r.system == system:
                key = (f"{r.servpod}", f"{int(r.load * 100)}%")
                values[key] = max(values.get(key, 0.0), r.cpu_utilisation * 100)
        print(render_heatmap(
            [p for _, p in SHOWCASED_SERVPODS],
            [f"{int(l * 100)}%" for l in sorted({r.load for r in rows})],
            values,
            title=f"Figure 10 — max CPU utilisation (%) under {system}",
        ))

    # At 85% load Rhythm keeps the machines busier than Heracles (which
    # runs LC only there).
    for _, pod in SHOWCASED_SERVPODS:
        rhythm = max(r.cpu_utilisation for r in rows
                     if r.servpod == pod and r.system == "Rhythm" and r.load == 0.85)
        heracles = max(r.cpu_utilisation for r in rows
                       if r.servpod == pod and r.system == "Heracles" and r.load == 0.85)
        assert rhythm > heracles

    # CPU-heavy BEs drive the highest utilisation (paper: CPU-stress and
    # LSTM reach ~70-80% at low LC load).
    cpu_heavy = max(r.cpu_utilisation for r in rows
                    if r.be_job in ("CPU-stress", "LSTM") and r.system == "Rhythm")
    assert cpu_heavy > 0.5
