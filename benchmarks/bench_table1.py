"""Table 1 — the LC/BE workload catalog."""

from __future__ import annotations

from repro.experiments.figures.table1 import table1_rows
from repro.experiments.report import render_table

from conftest import run_once


def test_table1_workload_catalog(benchmark):
    lc_rows, be_rows = run_once(benchmark, table1_rows)

    print()
    print(render_table(
        ["Workload", "Domain", "Servpods", "MaxLoad", "SLA", "Containers"],
        [[r.workload, r.domain, r.servpods, r.max_load, r.sla, r.containers]
         for r in lc_rows],
        title="Table 1 (LC workloads)",
    ))
    print(render_table(
        ["Workload", "Domain", "-intensive"],
        [[r.workload, r.domain, r.intensive] for r in be_rows],
        title="Table 1 (BE jobs)",
    ))

    # Paper row count: 6 LC services (incl. SNMS), 7 BE jobs (+2 small
    # stream variants used by the §2 characterization).
    assert len(lc_rows) == 6
    assert len(be_rows) == 9
    by_name = {r.workload: r for r in lc_rows}
    assert by_name["E-commerce"].max_load == "1300 QPS"
    assert by_name["Redis"].max_load == "86K QPS"
    assert by_name["Redis"].sla == "1.15 ms"
    assert by_name["SNMS"].containers == 30
