"""Ablations on Rhythm's design choices (DESIGN.md §5).

Not a paper figure — these isolate the value of (1) component
distinguishability, (2) the Eq. 4 contribution definition, (3) the
hardware/software isolation stack, and (4) CutBE's shedding escalation.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_contribution_definition_ablation,
    run_cut_escalation_ablation,
    run_distinguishability_ablation,
    run_isolation_ablation,
)
from repro.experiments.report import render_table

from conftest import run_once


def test_ablation_component_distinguishability(benchmark):
    result = run_once(benchmark, run_distinguishability_ablation)
    print()
    print(render_table(
        ["System", "EMU", "BE tput", "violations"],
        [
            ["Rhythm (per-Servpod)", round(result.rhythm_emu, 3),
             round(result.rhythm_be_throughput, 3), result.rhythm_violations],
            ["uniform (worst-case thresholds)", round(result.uniform_emu, 3),
             round(result.uniform_be_throughput, 3), result.uniform_violations],
        ],
        title="Ablation 1 — the value of distinguishing components",
    ))
    print(f"EMU gain from distinguishability: {result.emu_gain:+.1%}")
    # Distinguishing components buys throughput at equal safety.
    assert result.rhythm_emu >= result.uniform_emu
    assert result.rhythm_violations == 0


def test_ablation_contribution_definition(benchmark):
    result = run_once(benchmark, run_contribution_definition_ablation)
    print()
    print(render_table(
        ["Definition", "corr. with sensitivity"],
        [[name, round(r, 3)] for name, r in result.correlations.items()],
        title="Ablation 2 — candidate contribution definitions (§3.4)",
    ))
    # The paper's Eq. 4 (rho*P*V) is at least as predictive as the
    # simpler candidates.
    eq4 = result.correlations["rho*P*V (Eq.4)"]
    assert eq4 >= result.correlations["P"]
    assert eq4 >= result.correlations["P*V"] - 0.02


def test_ablation_isolation_mechanisms(benchmark):
    rows = run_once(benchmark, run_isolation_ablation)
    print()
    print(render_table(
        ["Isolation", "worst p99/SLA", "violations", "BE tput"],
        [[r.label, round(r.worst_tail_over_sla, 2), r.sla_violations,
          round(r.be_throughput, 3)] for r in rows],
        title="Ablation 3 — isolation mechanisms (§4)",
    ))
    by = {r.label: r for r in rows}
    # Disabling isolation strictly worsens the worst tail.
    assert by["no CAT"].worst_tail_over_sla > by["full isolation"].worst_tail_over_sla
    assert (by["no CAT, no cpuset"].worst_tail_over_sla
            >= by["no CAT"].worst_tail_over_sla - 0.05)


def test_ablation_cut_escalation(benchmark):
    result = run_once(benchmark, run_cut_escalation_ablation)
    print()
    print(render_table(
        ["CutBE variant", "violations", "worst p99/SLA"],
        [
            ["shrink + pause escalation", result.with_escalation_violations,
             round(result.with_escalation_worst, 2)],
            ["shrink only", result.without_escalation_violations,
             round(result.without_escalation_worst, 2)],
        ],
        title="Ablation 4 — CutBE shedding escalation",
    ))
    # The escalation keeps more headroom under production ramps.
    assert result.with_escalation_worst <= result.without_escalation_worst
    assert result.with_escalation_violations <= result.without_escalation_violations
