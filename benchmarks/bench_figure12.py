"""Figure 12 — service-level EMU improvements under constant load."""

from __future__ import annotations

from repro.experiments.figures.figure12_14 import improvement_table
from repro.experiments.report import render_table

from conftest import run_once, service_grid


def test_figure12_emu_improvement(benchmark):
    rows = run_once(benchmark, service_grid)

    table = improvement_table(rows, "emu_improvement")
    paper = {"E-commerce": 0.116, "Redis": 0.184, "Solr": 0.246,
             "Elgg": 0.14, "Elasticsearch": 0.127}
    print()
    print(render_table(
        ["Service", "avg EMU improvement", "paper"],
        [[s, f"{v:+.1%}", f"+{paper[s]:.1%}"] for s, v in table.items()],
        title="Figure 12 — (EMU_Rhythm − EMU_Heracles) / EMU_Heracles",
    ))

    # Rhythm improves (or at worst matches) EMU on average per service.
    for service, improvement in table.items():
        assert improvement > -0.02, f"{service} regressed: {improvement:+.2%}"
    # Somewhere the gain is meaningful. (Smaller than the paper's
    # +11.6..24.6% averages: in this simulation both systems saturate the
    # same BE instance caps at low/mid loads, so the gains concentrate in
    # the >= 85%-load column — see EXPERIMENTS.md.)
    assert max(table.values()) > 0.02

    # Gains concentrate at high load: the 85% column beats the 25% one.
    def avg_at(load):
        vals = [r.emu_improvement for r in rows if r.load == load]
        return sum(vals) / len(vals)

    assert avg_at(0.85) > avg_at(0.25)

    # Rhythm never violates the SLA in any constant-load cell.
    assert all(r.rhythm_violations == 0 for r in rows)
