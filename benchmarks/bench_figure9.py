"""Figure 9 — BE throughput at the showcased Servpods, Rhythm vs Heracles."""

from __future__ import annotations

from repro.experiments.figures.figure9_11 import SHOWCASED_SERVPODS, average_gain
from repro.experiments.report import render_table

from conftest import run_once, servpod_grid


def test_figure9_be_throughput(benchmark):
    rows = run_once(benchmark, servpod_grid)

    print()
    for _, pod in SHOWCASED_SERVPODS:
        subset = [r for r in rows if r.servpod == pod]
        print(render_table(
            ["BE", "load", "Rhythm", "Heracles"],
            [
                [r.be_job, r.load, round(r.be_throughput, 3),
                 round(next(h.be_throughput for h in subset
                            if h.be_job == r.be_job and h.load == r.load
                            and h.system == "Heracles"), 3)]
                for r in subset if r.system == "Rhythm"
            ],
            title=f"Figure 9 — normalized BE throughput at {pod}",
        ))

    # Heracles runs no BE jobs at the 85% grid point; Rhythm does at
    # every showcased Servpod (their loadlimits are 0.87-0.93).
    for _, pod in SHOWCASED_SERVPODS:
        heracles_85 = [
            r.be_throughput for r in rows
            if r.servpod == pod and r.system == "Heracles" and r.load == 0.85
        ]
        rhythm_85 = [
            r.be_throughput for r in rows
            if r.servpod == pod and r.system == "Rhythm" and r.load == 0.85
        ]
        assert max(heracles_85) == 0.0
        assert max(rhythm_85) > 0.0

    # Average BE-throughput gain is non-negative at every Servpod (the
    # paper reports +0.185..0.41).
    for _, pod in SHOWCASED_SERVPODS:
        gain = average_gain(rows, pod, "be_throughput")
        print(f"avg BE-throughput gain at {pod}: {gain:+.3f}")
        assert gain >= -0.01
