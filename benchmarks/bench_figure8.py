"""Figure 8 — CoV-vs-load curves and the derived loadlimits."""

from __future__ import annotations

from repro.experiments.figures.figure8 import run_figure8
from repro.experiments.report import render_table

from conftest import run_once


def test_figure8_loadlimit_derivation(benchmark):
    data = run_once(benchmark, run_figure8)

    print()
    print(render_table(
        ["Servpod", "mean CoV", "loadlimit", "paper"],
        [
            ["mysql", round(data.mean_cov["mysql"], 3), data.loadlimit["mysql"], "0.76"],
            ["tomcat", round(data.mean_cov["tomcat"], 3), data.loadlimit["tomcat"], "0.87"],
            ["haproxy", round(data.mean_cov["haproxy"], 3), data.loadlimit["haproxy"], "-"],
            ["amoeba", round(data.mean_cov["amoeba"], 3), data.loadlimit["amoeba"], "-"],
        ],
        title="Figure 8 — loadlimit = first load whose CoV exceeds the average",
    ))

    # Paper values: MySQL 0.76, Tomcat 0.87.
    assert abs(data.loadlimit["mysql"] - 0.76) <= 0.05
    assert abs(data.loadlimit["tomcat"] - 0.87) <= 0.05
    assert data.loadlimit["mysql"] < data.loadlimit["tomcat"]

    # The CoV curves rise past their knees: the last point is well above
    # the first for both plotted Servpods.
    for pod in ("mysql", "tomcat"):
        covs = data.covs[pod]
        assert covs[-1] > 1.5 * covs[0]
