"""The abstract's headline numbers, recomputed at simulation scale.

Paper: "Rhythm improves the system throughput by 31.7%, CPU utilization
by 26.2%, and memory bandwidth utilization by 34% while guaranteeing the
SLA" — those are the best production-load cells of Figure 15; the
averages are lower. This benchmark reports our best/mean cells and
asserts the qualitative claim: positive throughput gains with a fully
guarded SLA.
"""

from __future__ import annotations

from repro.experiments.report import render_table

from conftest import production_grid, run_once


def test_headline_improvements(benchmark):
    rows = run_once(benchmark, production_grid)

    best_emu = max(rows, key=lambda r: r.emu_improvement)
    best_cpu = max(rows, key=lambda r: r.cpu_improvement)
    best_membw = max(rows, key=lambda r: r.membw_improvement)
    mean = lambda attr: sum(getattr(r, attr) for r in rows) / len(rows)

    print()
    print(render_table(
        ["Metric", "best cell", "best value", "grid mean", "paper best"],
        [
            ["EMU", f"{best_emu.service}/{best_emu.be_job}",
             f"{best_emu.emu_improvement:+.1%}", f"{mean('emu_improvement'):+.1%}",
             "+31.7%"],
            ["CPU util", f"{best_cpu.service}/{best_cpu.be_job}",
             f"{best_cpu.cpu_improvement:+.1%}", f"{mean('cpu_improvement'):+.1%}",
             "+26.2%"],
            ["MemBW util", f"{best_membw.service}/{best_membw.be_job}",
             f"{best_membw.membw_improvement:+.1%}",
             f"{mean('membw_improvement'):+.1%}", "+34.0%"],
        ],
        title="Headline — Rhythm vs Heracles under production load",
    ))

    # Qualitative headline: throughput improves, SLA is never violated.
    assert best_emu.emu_improvement > 0.05
    assert mean("emu_improvement") > 0.0
    assert all(r.rhythm_violations == 0 for r in rows)
    assert all(r.worst_p99_over_sla <= 1.0 for r in rows)
