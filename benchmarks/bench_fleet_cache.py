"""Incremental fleet engine benchmark → ``BENCH_fleet_cache.json``.

Measures the shard-granular fleet result cache end to end:

- ``cold`` vs ``warm``: the same Alibaba-shaped fleet run twice against
  one private store. The warm run must be >=50x faster, execute ZERO
  simulations (every zone a hit) and reproduce the cold run's
  ``FleetResult.digest`` bit-identically.
- ``resharded``: the warm fleet again under a different shard count —
  zone entries are shard-count-invariant, so it must also be all-hits.
- ``incremental``: one instance's seed is bumped (a one-zone edit) and
  the fleet re-run; only the touched zone may simulate.

Run standalone (``PYTHONPATH=src python benchmarks/bench_fleet_cache.py
[--out BENCH_fleet_cache.json] [--gate 50.0]``) or via
``pytest benchmarks/bench_fleet_cache.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import shutil
import tempfile
import time
from typing import Dict, Optional

from bench_env import environment
from repro.cache import CacheStore
from repro.experiments.fleet import FleetConfig, FleetExperiment, alibaba_fleet

DEFAULT_REPORT = "BENCH_fleet_cache.json"
DEFAULT_GATE = None

#: The probe fleet: big enough that a cold run is solidly measurable
#: (dozens of instances, ten simulated minutes) while a warm run is a
#: handful of store reads.
BENCH_MACHINES = 48
BENCH_DURATION_S = 600.0
BENCH_SEED = 11
BENCH_SHARDS = 4
BENCH_ZONE_SIZE = 4


def _stats(result) -> Dict[str, object]:
    return {
        "hits": result.cache.hits,
        "misses": result.cache.misses,
        "skipped": result.cache.skipped,
        "zero_simulations": result.cache.simulated == 0,
    }


def run_benchmark(
    out: Optional[str] = DEFAULT_REPORT,
    gate: Optional[float] = DEFAULT_GATE,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """Run the cold/warm/resharded/incremental sequence and report."""
    config = FleetConfig(
        duration_s=BENCH_DURATION_S,
        shards=BENCH_SHARDS,
        workers=workers,
        zone_size=BENCH_ZONE_SIZE,
    )
    fleet = alibaba_fleet(
        BENCH_MACHINES,
        policy="heracles",
        duration_s=BENCH_DURATION_S,
        seed=BENCH_SEED,
        config=config,
    )
    cache_dir = tempfile.mkdtemp(prefix="rhythm-bench-fleet-cache-")
    store = CacheStore(directory=cache_dir)
    try:
        t0 = time.perf_counter()
        cold = fleet.run(cache=store)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = fleet.run(cache=store)
        warm_s = time.perf_counter() - t0

        resharded = FleetExperiment(
            fleet.instances, dataclasses.replace(config, shards=1)
        ).run(cache=store)

        # One-zone edit: bump one instance's seed. Only its zone's key
        # changes, so only that zone may re-simulate.
        specs = list(fleet.instances)
        edited_index = len(specs) // 2
        specs[edited_index] = dataclasses.replace(
            specs[edited_index], seed=specs[edited_index].seed + 10_000
        )
        incremental = FleetExperiment(specs, config).run(cache=store)

        disk = store.stats()
        speedup = round(cold_s / warm_s, 1) if warm_s > 0 else None
        zones = cold.cache.total
        report: Dict[str, object] = {
            "benchmark": "fleet_zone_cache",
            **environment(),
            "fleet": {
                "machines": cold.n_machines,
                "instances": cold.n_instances,
                "zones": zones,
                "duration_s": BENCH_DURATION_S,
                "shards": BENCH_SHARDS,
                "zone_size": BENCH_ZONE_SIZE,
            },
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": speedup,
            "cold": _stats(cold),
            "warm": _stats(warm),
            "warm_identical_digest": warm.digest == cold.digest,
            "resharded": {
                **_stats(resharded),
                "shards": 1,
                "identical_digest": resharded.digest == cold.digest,
            },
            "incremental": {
                **_stats(incremental),
                "edited_instance": edited_index,
                "edited_zone": edited_index // BENCH_ZONE_SIZE,
                "only_touched_zone": (
                    incremental.cache.misses == 1
                    and incremental.cache.hits == zones - 1
                ),
            },
            "store_entries": disk.entries,
            "store_bytes": disk.total_bytes,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    correct = bool(
        report["warm"]["zero_simulations"]
        and report["warm_identical_digest"]
        and report["resharded"]["zero_simulations"]
        and report["resharded"]["identical_digest"]
        and report["incremental"]["only_touched_zone"]
    )
    report["correct"] = correct
    if gate is not None:
        report["gate"] = gate
        report["gate_passed"] = bool(
            correct and speedup is not None and speedup >= gate
        )
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def test_fleet_cache_speedup(benchmark):
    """One measured round: warm >=50x, zero sims, identical digests."""
    from conftest import run_once

    report = run_once(benchmark, run_benchmark)
    print()
    print(json.dumps(report, indent=2))
    assert report["correct"], "fleet cache broke digests or re-simulated"
    assert report["speedup"] >= 50.0, (
        f"expected >=50x warm fleet re-run, got {report['speedup']}x"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_REPORT)
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail (exit 1) if warm speedup < GATE or any check fails",
    )
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()
    report = run_benchmark(out=args.out, gate=args.gate, workers=args.workers)
    print(json.dumps(report, indent=2))
    if not report["correct"]:
        print("FAIL: fleet cache broke digests or re-simulated cached zones")
        return 1
    print(
        f"\ncold {report['cold_s']}s | warm {report['warm_s']}s | "
        f"speedup {report['speedup']}x | "
        f"{report['fleet']['zones']} zones, "
        f"incremental re-simulated 1 | report -> {args.out}"
    )
    if args.gate is not None and not report.get("gate_passed"):
        print(f"FAIL: warm speedup {report['speedup']}x below gate {args.gate}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
