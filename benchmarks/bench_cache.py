"""Cold-vs-warm content-addressed cache benchmark → ``BENCH_cache.json``.

Runs a reduced Figure 9–11 grid (1 service × 3 BE jobs × 2 loads, each
cell simulated under Rhythm *and* Heracles) twice against a fresh
disk-backed :class:`~repro.cache.store.CacheStore`:

1. **cold** — every artifact and cell misses, profiles and simulates,
   and stores its result;
2. **warm** — the in-process Rhythm cache is cleared first, so *every*
   result (the profiling artifact included) must come back from disk;
   zero simulations run.

The warm results must be bit-identical to the cold ones (the stored
object *is* the cold result), and a warm re-run of an unchanged grid is
expected to be ≥5× faster than the cold run — on any hardware, since it
replaces simulation with deserialisation.

Run standalone (``PYTHONPATH=src python benchmarks/bench_cache.py
[--out BENCH_cache.json]``) or via
``pytest benchmarks/bench_cache.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional

from bench_env import environment
from repro.bejobs.catalog import evaluation_be_jobs
from repro.cache import CacheStore
from repro.experiments.colocation import ColocationConfig
from repro.experiments.runner import clear_rhythm_cache
from repro.parallel.grid import (
    GridCacheStats,
    GridCell,
    comparison_fingerprint,
    run_comparison_grid,
)
from repro.workloads.catalog import LC_CATALOG

#: The reduced grid: 1 service x 3 BE jobs x 2 loads.
BENCH_SERVICE = "Redis"
BENCH_LOADS = (0.25, 0.65)
BENCH_BE_JOBS = 3
BENCH_DURATION_S = 60.0
DEFAULT_REPORT = "BENCH_cache.json"

#: Acceptance floor for the warm-over-cold speedup.
MIN_SPEEDUP = 5.0


def build_cells(seed: int = 0) -> List[GridCell]:
    """The benchmark's cell list (deterministic order)."""
    spec = LC_CATALOG[BENCH_SERVICE]()
    return [
        GridCell(spec, be, load, seed=seed)
        for be in evaluation_be_jobs()[:BENCH_BE_JOBS]
        for load in BENCH_LOADS
    ]


def run_benchmark(
    seed: int = 0, out: Optional[str] = DEFAULT_REPORT
) -> Dict[str, object]:
    """Time the grid cold and warm; write and return the report."""
    config = ColocationConfig(duration_s=BENCH_DURATION_S)
    cache_dir = tempfile.mkdtemp(prefix="rhythm-bench-cache-")
    try:
        store = CacheStore(cache_dir)
        cells = build_cells(seed)

        clear_rhythm_cache()
        cold_stats = GridCacheStats()
        t0 = time.perf_counter()
        cold = run_comparison_grid(
            cells, config=config, workers=1, cache=store, cache_stats=cold_stats
        )
        cold_s = time.perf_counter() - t0

        # Clearing the in-process pipeline cache forces the warm run to
        # reload everything — the profiling artifact included — from
        # disk, i.e. the cross-process warm behaviour in one process.
        clear_rhythm_cache()
        warm_stats = GridCacheStats()
        t0 = time.perf_counter()
        warm = run_comparison_grid(
            cells, config=config, workers=1, cache=store, cache_stats=warm_stats
        )
        warm_s = time.perf_counter() - t0

        identical = [comparison_fingerprint(r) for r in cold] == [
            comparison_fingerprint(r) for r in warm
        ]
        disk = store.stats()
        report: Dict[str, object] = {
            "benchmark": "content_addressed_cache",
            "grid": {
                "service": BENCH_SERVICE,
                "be_jobs": BENCH_BE_JOBS,
                "loads": list(BENCH_LOADS),
                "cells": len(cells),
                "simulations": 2 * len(cells),
                "duration_s_per_cell": BENCH_DURATION_S,
            },
            **environment(),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else None,
            "cold": {
                "hits": cold_stats.hits,
                "misses": cold_stats.misses,
                "skipped": cold_stats.skipped,
            },
            "warm": {
                "hits": warm_stats.hits,
                "misses": warm_stats.misses,
                "skipped": warm_stats.skipped,
            },
            "store_entries": disk.entries,
            "store_bytes": disk.total_bytes,
            "identical_results": identical,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def test_cache_warm_speedup(benchmark):
    """One measured round: cold vs warm, bit-identity and hit counts checked."""
    from conftest import run_once

    report = run_once(benchmark, run_benchmark)
    print()
    print(json.dumps(report, indent=2))
    assert report["identical_results"], "warm results diverged from cold"
    cells = report["grid"]["cells"]
    assert report["warm"] == {"hits": cells, "misses": 0, "skipped": 0}
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP}x warm speedup, got {report['speedup']}x"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=DEFAULT_REPORT)
    args = parser.parse_args()
    report = run_benchmark(seed=args.seed, out=args.out)
    print(json.dumps(report, indent=2))
    if not report["identical_results"]:
        print("FAIL: warm results diverged from cold")
        return 1
    if report["warm"]["misses"] or report["warm"]["skipped"]:
        print("FAIL: warm run recomputed cells")
        return 1
    print(
        f"\n{report['grid']['simulations']} simulations | "
        f"cold {report['cold_s']}s | warm {report['warm_s']}s | "
        f"speedup {report['speedup']}x | bit-identical | "
        f"report -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
