"""Figure 14 — MemBW-utilisation improvements (shares the Fig. 12-14 grid)."""

from __future__ import annotations

from repro.experiments.figures.figure12_14 import improvement_table
from repro.experiments.report import render_table

from conftest import run_once, service_grid


def test_figure14_membw_improvement(benchmark):
    rows = run_once(benchmark, service_grid)

    table = improvement_table(rows, "membw_improvement")
    print()
    print(render_table(
        ["Service", "avg MemBW-util improvement"],
        [[s, f"{v:+.1%}"] for s, v in table.items()],
        title="Figure 14 — (MeB_Rhythm − MeB_Heracles) / MeB_Heracles",
    ))

    # At 85% load Rhythm's bandwidth utilisation is at least Heracles'.
    for service in table:
        cells = [r for r in rows if r.service == service and r.load == 0.85]
        assert all(c.membw_rhythm >= c.membw_heracles - 1e-9 for c in cells)

    # Bandwidth-hungry BEs (stream-dram, wordcount) show the largest
    # absolute bandwidth use (paper: the stream-dram/wordcount columns
    # dominate Figure 14).
    hungry = [r.membw_rhythm for r in rows if r.be_job in ("stream-dram", "wordcount")]
    light = [r.membw_rhythm for r in rows if r.be_job == "CPU-stress"]
    assert max(hungry) > max(light)
