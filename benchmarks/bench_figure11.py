"""Figure 11 — memory-bandwidth utilisation at the showcased Servpods
(shares the Figures 9-11 grid, computed once per session)."""

from __future__ import annotations

from repro.experiments.figures.figure9_11 import SHOWCASED_SERVPODS
from repro.experiments.report import render_heatmap

from conftest import run_once, servpod_grid


def test_figure11_membw_utilisation(benchmark):
    rows = run_once(benchmark, servpod_grid)

    print()
    values = {}
    for r in rows:
        if r.system == "Rhythm":
            key = (r.servpod, r.be_job[:12])
            values[key] = max(values.get(key, 0.0), r.membw_utilisation * 100)
    print(render_heatmap(
        [p for _, p in SHOWCASED_SERVPODS],
        sorted({r.be_job[:12] for r in rows}),
        values,
        title="Figure 11 — max MemBW utilisation (%) under Rhythm, per BE",
    ))

    # Memory-system stressors drive far more bandwidth than CPU-stress
    # (paper: stream co-location reaches ~80%+, CPU-stress stays low).
    for _, pod in SHOWCASED_SERVPODS:
        stream = max(r.membw_utilisation for r in rows
                     if r.servpod == pod and r.system == "Rhythm"
                     and r.be_job == "stream-dram")
        cpu = max(r.membw_utilisation for r in rows
                  if r.servpod == pod and r.system == "Rhythm"
                  and r.be_job == "CPU-stress")
        assert stream > cpu

    # At 85% load Rhythm still uses bandwidth where Heracles idles.
    for _, pod in SHOWCASED_SERVPODS:
        rhythm = max(r.membw_utilisation for r in rows
                     if r.servpod == pod and r.system == "Rhythm" and r.load == 0.85)
        heracles = max(r.membw_utilisation for r in rows
                       if r.servpod == pod and r.system == "Heracles" and r.load == 0.85)
        assert rhythm >= heracles
