"""Fleet kernel benchmark → ``BENCH_fleet.json``.

Three sections, all on the same machinery as the rest of the repo:

- ``reference_scale``: 48 Redis instances (96 machines) for half a
  simulated hour on ONE core, scalar-sequential vs the fleet SoA
  kernel. This is the ISSUE's colocation-path gate: the fleet path must
  clear >=10x events/sec at bit-identity (digests compare result
  fingerprints *and* final RNG stream states per instance). A
  ``default_config`` probe records the smaller speedup at the default
  per-instance knobs for transparency — the gate shape uses
  ``max_be_instances=32`` and ``sample_cap=50``, where the scalar
  path's per-job and per-sample overheads dominate, which is exactly
  the regime a real fleet (many BE jobs per machine) lives in.
- ``identity_checks``: fleet-vs-reference digests at reference scale,
  in fork- and spawn-started children, with a fault-injected instance
  mixed in, and across shard counts 1/2/4 (zone-aligned sharding makes
  shard count a pure wall-clock knob).
- ``fleet_run``: the end-to-end >=1,000-machine synthetic
  Alibaba-shaped trace (diurnal + flash crowds), Rhythm vs Heracles,
  sharded across the persistent pool, plus a constant-load
  Rhythm-vs-Heracles curve at fleet scale.

Run standalone (``PYTHONPATH=src python benchmarks/bench_fleet.py
[--out BENCH_fleet.json] [--gate 10.0]``) or via
``pytest benchmarks/bench_fleet.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import time
from typing import Dict, List, Optional, Tuple

from bench_env import environment
from repro.experiments.fleet import (
    FleetConfig,
    FleetExperiment,
    FleetInstanceSpec,
    alibaba_fleet,
    fleet_identity_probe,
    heracles_fleet_policies,
    rhythm_fleet_policies,
)
from repro.loadgen.patterns import ConstantLoad

DEFAULT_REPORT = "BENCH_fleet.json"
DEFAULT_GATE = None

#: The reference-scale probe: 48 two-machine Redis instances for half a
#: simulated hour. Wide enough that the fleet kernel's whole-array ops
#: amortise their per-op numpy overhead, and long enough that the
#: steady colocation state (where both paths stop mutating the world
#: and the scalar path's repeated per-job recomputation dominates) is
#: most of the run.
REF_INSTANCES = 48
REF_DURATION_S = 1800.0
REF_SEED0 = 200
#: The short fleet-side run is timed best-of-N (the scalar side runs
#: ~10x longer, which already averages scheduler noise out).
REF_FLEET_REPEATS = 3
FLEET_MACHINES = 1000
FLEET_DURATION_S = 600.0
CURVE_LOADS = (0.25, 0.45, 0.65, 0.85)
CURVE_INSTANCES = 12
CURVE_DURATION_S = 300.0


def _constant_fleet(
    n_instances: int,
    policy: str,
    load: float,
    duration_s: float,
    config: FleetConfig,
    seed0: int = REF_SEED0,
) -> FleetExperiment:
    """A homogeneous constant-load Redis fleet under one policy."""
    policies = (
        rhythm_fleet_policies("Redis")
        if policy == "rhythm"
        else heracles_fleet_policies("Redis")
    )
    specs = [
        FleetInstanceSpec(
            service="Redis",
            policies=tuple(sorted(policies.items())),
            be_jobs=("stream-llc",),
            pattern=ConstantLoad(load),
            seed=seed0 + k,
        )
        for k in range(n_instances)
    ]
    return FleetExperiment(specs, config)


def _reference_scale(
    max_be_instances: int,
    sample_cap: int,
    duration_s: float,
    n_instances: int = REF_INSTANCES,
    repeats: int = REF_FLEET_REPEATS,
) -> Dict[str, object]:
    """Scalar-sequential vs fleet kernel on one core, identity-checked."""
    config = FleetConfig(
        duration_s=duration_s,
        shards=1,
        workers=1,
        sample_cap=sample_cap,
        min_samples=min(100, sample_cap),
        max_be_instances=max_be_instances,
    )
    fleet = _constant_fleet(n_instances, "heracles", 0.55, duration_s, config)
    t0 = time.perf_counter()
    scalar = fleet.run_reference()
    scalar_s = time.perf_counter() - t0
    fleet_s = None
    identical = True
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        batched = fleet.run()
        elapsed = time.perf_counter() - t0
        fleet_s = elapsed if fleet_s is None else min(fleet_s, elapsed)
        identical = identical and scalar.digest == batched.digest
    events = scalar.events_fired
    return {
        "instances": n_instances,
        "machines": scalar.n_machines,
        "duration_s": duration_s,
        "fleet_repeats": max(1, repeats),
        "max_be_instances": max_be_instances,
        "sample_cap": sample_cap,
        "events": events,
        "scalar_s": round(scalar_s, 4),
        "fleet_s": round(fleet_s, 4),
        "events_per_sec_scalar": round(events / scalar_s, 1),
        "events_per_sec_fleet": round(events / fleet_s, 1),
        "speedup": round(scalar_s / fleet_s, 2) if fleet_s > 0 else None,
        "identical": identical,
    }


def _subprocess_identity() -> bool:
    """Fork and spawn children must reproduce the parent's sequential
    scalar reference digest through the fleet kernel, faults included."""
    cases = [
        {"n_instances": 4, "duration_s": 60.0, "seed": 5, "with_faults": False},
        {"n_instances": 4, "duration_s": 60.0, "seed": 5, "with_faults": True},
    ]
    methods = [
        m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
    ]
    for method in methods:
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(1) as pool:
            for case in cases:
                child = pool.apply(fleet_identity_probe, ("fleet",), case)
                if fleet_identity_probe("reference", **case) != child:
                    return False
    return bool(methods)


def _shard_invariance() -> Dict[str, object]:
    """The same fleet under shard counts 1/2/4 must produce one digest."""
    digests = {
        shards: fleet_identity_probe(
            "fleet", n_instances=8, duration_s=60.0, seed=9, shards=shards
        )
        for shards in (1, 2, 4)
    }
    return {
        "digests": {str(k): v[:16] for k, v in digests.items()},
        "invariant": len(set(digests.values())) == 1,
    }


def _fleet_run(workers: Optional[int]) -> Dict[str, object]:
    """The >=1,000-machine Rhythm-vs-Heracles end-to-end run.

    Runs against a private zone-granular :class:`CacheStore` so the
    report also carries the fleet cache accounting at scale: both
    policy runs are cold (every zone a miss), and the shards=3
    invariance re-run of the heracles fleet is warm — zero simulated
    zones, same digest, despite the different sharding.
    """
    import shutil
    import tempfile

    from repro.cache import CacheStore

    cache_dir = tempfile.mkdtemp(prefix="rhythm-bench-fleet-")
    store = CacheStore(directory=cache_dir)
    policies: Dict[str, Dict[str, object]] = {}
    try:
        for policy in ("rhythm", "heracles"):
            fleet = alibaba_fleet(
                FLEET_MACHINES,
                policy=policy,
                duration_s=FLEET_DURATION_S,
                seed=0,
                config=FleetConfig(
                    duration_s=FLEET_DURATION_S, shards=8, workers=workers
                ),
            )
            t0 = time.perf_counter()
            result = fleet.run(cache=store)
            elapsed = time.perf_counter() - t0
            policies[policy] = {
                "machines": result.n_machines,
                "instances": result.n_instances,
                "events_fired": result.events_fired,
                "be_throughput": round(result.be_throughput, 4),
                "emu": round(result.emu, 4),
                "sla_violations": result.sla_violations,
                "sla_violation_rate": round(result.sla_violation_rate, 5),
                "wall_s": round(elapsed, 2),
                "digest": result.digest,
                "cache": {
                    "hits": result.cache.hits,
                    "misses": result.cache.misses,
                    "skipped": result.cache.skipped,
                },
            }
        # Full-scale shard invariance: the cheaper policy, twice. The
        # re-run is deliberately differently sharded AND warm: zone
        # entries are shard-count-invariant, so it must reproduce the
        # cold digest from the store alone.
        fleet2 = alibaba_fleet(
            FLEET_MACHINES,
            policy="heracles",
            duration_s=FLEET_DURATION_S,
            seed=0,
            config=FleetConfig(
                duration_s=FLEET_DURATION_S, shards=3, workers=workers
            ),
        )
        warm = fleet2.run(cache=store)
        shard_invariant = warm.digest == policies["heracles"]["digest"]
        warm_cache = {
            "hits": warm.cache.hits,
            "misses": warm.cache.misses,
            "skipped": warm.cache.skipped,
            "zero_simulations": warm.cache.simulated == 0,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "duration_s": FLEET_DURATION_S,
        "policies": policies,
        "shard_invariant_at_scale": shard_invariant,
        "warm_rerun_cache": warm_cache,
    }


def _load_curve(workers: Optional[int]) -> List[Dict[str, object]]:
    """Rhythm-vs-Heracles BE-throughput/SLA curve at fleet scale."""
    curve: List[Dict[str, object]] = []
    config = FleetConfig(
        duration_s=CURVE_DURATION_S, shards=4, workers=workers
    )
    for load in CURVE_LOADS:
        point: Dict[str, object] = {"load": load}
        for policy in ("rhythm", "heracles"):
            fleet = _constant_fleet(
                CURVE_INSTANCES, policy, load, CURVE_DURATION_S, config
            )
            result = fleet.run()
            point[policy] = {
                "be_throughput": round(result.be_throughput, 4),
                "emu": round(result.emu, 4),
                "sla_violation_rate": round(result.sla_violation_rate, 5),
            }
        curve.append(point)
    return curve


def run_benchmark(
    out: Optional[str] = DEFAULT_REPORT,
    gate: Optional[float] = DEFAULT_GATE,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """Run every section and write the report."""
    reference = _reference_scale(
        max_be_instances=32, sample_cap=50, duration_s=REF_DURATION_S
    )
    default_cfg = _reference_scale(
        max_be_instances=16, sample_cap=800, duration_s=600.0,
        n_instances=16, repeats=1,
    )
    subprocess_ok = _subprocess_identity()
    shards = _shard_invariance()
    fleet_run = _fleet_run(workers)
    curve = _load_curve(workers)

    identical = bool(
        reference["identical"]
        and default_cfg["identical"]
        and subprocess_ok
        and shards["invariant"]
        and fleet_run["shard_invariant_at_scale"]
    )
    report: Dict[str, object] = {
        "benchmark": "fleet_kernel",
        **environment(),
        "reference_scale": reference,
        "default_config": default_cfg,
        "identity_checks": {
            "reference_scale": reference["identical"],
            "default_config": default_cfg["identical"],
            "fork_and_spawn_subprocesses": subprocess_ok,
            "shard_counts": shards,
            "shard_invariant_at_scale": fleet_run["shard_invariant_at_scale"],
        },
        "fleet_run": fleet_run,
        "load_curve": curve,
        "fleet_machines": fleet_run["policies"]["rhythm"]["machines"],
        "identical_results": identical,
    }
    if gate is not None:
        report["gate"] = gate
        report["gate_passed"] = bool(
            identical and reference["speedup"] is not None
            and reference["speedup"] >= gate
        )
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def test_fleet_speedup(benchmark):
    """One measured round: fleet kernel vs scalar sequence, identity-gated."""
    from conftest import run_once

    report = run_once(benchmark, run_benchmark)
    print()
    print(json.dumps(report, indent=2))
    assert report["identical_results"], "fleet kernel diverged from scalar"
    assert report["fleet_machines"] >= 1000
    assert report["reference_scale"]["speedup"] >= 10.0, (
        f"expected >=10x colocation-path speedup, "
        f"got {report['reference_scale']['speedup']}x"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_REPORT)
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail (exit 1) if reference-scale speedup < GATE or identity fails",
    )
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()
    report = run_benchmark(out=args.out, gate=args.gate, workers=args.workers)
    print(json.dumps(report, indent=2))
    ref = report["reference_scale"]
    if not report["identical_results"]:
        print("FAIL: fleet kernel diverged from the scalar reference")
        return 1
    print(
        f"\n{ref['events']} events | scalar {ref['scalar_s']}s | "
        f"fleet {ref['fleet_s']}s | speedup {ref['speedup']}x | "
        f"{report['fleet_machines']} machines end-to-end | report -> {args.out}"
    )
    if args.gate is not None and not report.get("gate_passed"):
        print(f"FAIL: speedup {ref['speedup']}x below gate {args.gate}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
