"""Figure 13 — CPU-utilisation improvements (shares the Fig. 12-14 grid)."""

from __future__ import annotations

from repro.experiments.figures.figure12_14 import improvement_table
from repro.experiments.report import render_table

from conftest import run_once, service_grid


def test_figure13_cpu_improvement(benchmark):
    rows = run_once(benchmark, service_grid)

    table = improvement_table(rows, "cpu_improvement")
    print()
    print(render_table(
        ["Service", "avg CPU-util improvement"],
        [[s, f"{v:+.1%}"] for s, v in table.items()],
        title="Figure 13 — (CPU_Rhythm − CPU_Heracles) / CPU_Heracles",
    ))

    # At the 85% column Rhythm's CPU utilisation beats Heracles' in every
    # service (Heracles runs LC only there).
    for service in table:
        cells = [r for r in rows if r.service == service and r.load == 0.85]
        assert all(c.cpu_rhythm >= c.cpu_heracles for c in cells)

    # CPU-heavy BEs (LSTM, CPU-stress) reach the highest absolute
    # utilisation under Rhythm (paper: >70% even at low LC load).
    cpu_cells = [r.cpu_rhythm for r in rows if r.be_job in ("CPU-stress", "LSTM")]
    other_cells = [r.cpu_rhythm for r in rows if r.be_job == "stream-dram"]
    assert max(cpu_cells) > max(other_cells)
