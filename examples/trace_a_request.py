#!/usr/bin/env python3
"""The non-intrusive request tracer, end to end (§3.3, Figure 4).

Drives a burst of requests through the four-tier E-commerce website,
emits the ACCEPT/RECV/SEND/CLOSE kernel-event stream a SystemTap probe
would capture (including unrelated-process noise), and reconstructs:

- the causal path graph of the service (Figure 4),
- per-request sojourn times per Servpod,
- the mean-sojourn invariance under non-blocking/persistent-TCP traces
  (the Figure 5 argument).

Usage::

    python examples/trace_a_request.py
"""

from __future__ import annotations

import numpy as np

from repro import RandomStreams, lc_service_spec
from repro.tracing import (
    CausalityMatcher,
    CausalPathGraph,
    EmitterConfig,
    SojournExtractor,
    TraceEmitter,
)
from repro.tracing.emitter import default_endpoints
from repro.workloads.service import Service


def main() -> None:
    service = lc_service_spec("E-commerce")
    svc = Service(service, RandomStreams(7))
    records = svc.build_request_records(load=0.5, n=200)
    endpoints = default_endpoints(service.servpod_names)

    # --- the clean case: blocking servers, ephemeral connections -----------
    emitter = TraceEmitter(endpoints, EmitterConfig(noise_per_request=4, seed=1))
    events = emitter.emit(records)
    print(f"Captured {len(events)} kernel events for {len(records)} requests "
          f"(including noise from unrelated processes).")

    matcher = CausalityMatcher(endpoints)
    clean = matcher.filter(events)
    print(f"After identifier-based filtering: {len(clean)} events remain.")
    print()

    cpg = CausalPathGraph(matcher)
    graph = cpg.aggregate_graph(events)
    print("Reconstructed causal path graph (Figure 4):")
    for src, dst in sorted(graph.edges):
        print(f"  {src} -> {dst}")
    print()

    extractor = SojournExtractor(matcher)
    stats = extractor.stats(events)
    truth = {}
    for record in records:
        for pod, sojourn in record.sojourn_by_servpod().items():
            truth.setdefault(pod, []).append(sojourn)
    print("Per-Servpod sojourn statistics (tracer vs ground truth):")
    print(f"  {'Servpod':10s} {'traced mean':>12s} {'true mean':>10s} {'CoV':>6s}")
    for pod in service.servpod_names:
        stat = stats[pod]
        print(f"  {pod:10s} {stat.mean_ms:9.3f} ms {np.mean(truth[pod]):7.3f} ms "
              f"{stat.cov:6.3f}")
    print()

    # --- the hard case: non-blocking event loops + persistent TCP ----------
    scrambled = TraceEmitter(
        endpoints,
        EmitterConfig(blocking=False, persistent_connections=True,
                      noise_per_request=4, seed=2),
    ).emit(records)
    means = SojournExtractor(CausalityMatcher(endpoints)).mean_only(scrambled)
    print("Non-blocking + persistent-TCP trace (pairings are ambiguous, but")
    print("the sums — hence the means — are invariant; the paper's Fig. 5):")
    for pod in service.servpod_names:
        print(f"  {pod:10s} mean-only estimate {means[pod].mean_ms:9.3f} ms "
              f"(truth {np.mean(truth[pod]):7.3f} ms)")


if __name__ == "__main__":
    main()
