#!/usr/bin/env python3
"""Quickstart: derive Rhythm's thresholds for a service and co-locate.

Runs the whole §3 pipeline on the E-commerce website from Table 1:

1. profile the solo run (request tracer),
2. analyze per-Servpod tail-latency contributions (Eq. 1-5),
3. derive loadlimit (Fig. 8 rule) and slacklimit (Algorithm 1),
4. co-locate with a DRAM-hungry batch job under 65% load and compare
   against the Heracles baseline.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ColocationConfig,
    compare_systems,
    lc_service_spec,
)
from repro.bejobs.catalog import STREAM_DRAM
from repro.experiments.runner import get_rhythm


def main() -> None:
    service = lc_service_spec("E-commerce")
    print(f"Service: {service.name} ({service.domain})")
    print(f"  Servpods : {', '.join(service.servpod_names)}")
    print(f"  MaxLoad  : {service.max_load_qps:g} QPS")
    print(f"  SLA      : p{service.tail_percentile:g} <= {service.sla_ms:g} ms")
    print()

    # Stages 1-3: profile once, derive per-Servpod thresholds. get_rhythm
    # caches the pipeline and runs Algorithm 1 against a production-load
    # SLA probe with mixed BE jobs (the paper's methodology).
    rhythm = get_rhythm(service)
    contributions = rhythm.contributions().normalized()
    loadlimits = rhythm.loadlimits()
    slacklimits = rhythm.slacklimits()

    print("Derived per-Servpod thresholds (the paper's core artifact):")
    print(f"  {'Servpod':10s} {'contribution':>13s} {'loadlimit':>10s} {'slacklimit':>11s}")
    for pod in service.servpod_names:
        print(
            f"  {pod:10s} {contributions[pod]:13.3f} "
            f"{loadlimits[pod]:10.2f} {slacklimits[pod]:11.3f}"
        )
    print()
    print("Reading: MySQL contributes most to tail latency, so its machine")
    print("gets the earliest loadlimit and the most conservative slacklimit;")
    print("HAProxy/Amoeba barely matter, so BE jobs grow there aggressively.")
    print()

    # Stage 4: run the co-location and compare with Heracles across loads.
    print("Co-locating stream-dram for 120 s per load level:")
    print(f"  {'load':>5s} {'Rhythm BE':>10s} {'Rhythm EMU':>11s} "
          f"{'Heracles BE':>12s} {'Heracles EMU':>13s} {'EMU gain':>9s}")
    for load in (0.45, 0.65, 0.85):
        cmp = compare_systems(
            service, STREAM_DRAM, load, config=ColocationConfig(duration_s=120.0)
        )
        print(
            f"  {load:5.2f} {cmp.rhythm.be_throughput:10.3f} "
            f"{cmp.rhythm.emu:11.3f} {cmp.heracles.be_throughput:12.3f} "
            f"{cmp.heracles.emu:13.3f} {cmp.emu_improvement:+9.1%}"
        )
    print()
    print("At low and mid loads both systems fill the spare capacity; at 85%")
    print("Heracles disables co-location entirely (uniform 0.85 loadlimit)")
    print("while Rhythm keeps BE jobs running on every machine whose own")
    print("loadlimit lies above the current load.")


if __name__ == "__main__":
    main()
