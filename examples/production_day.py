#!/usr/bin/env python3
"""A production day under Rhythm control (§5.3-5.4, Figure 17).

Replays a synthetic ClarkNet day against the E-commerce website while
Wordcount batch jobs fill the leftover capacity, and prints the control
timeline of the Tomcat and MySQL machines: load vs loadlimit, latency
slack, BE cores/instances and the action Algorithm 2 took each period.

Usage::

    python examples/production_day.py
"""

from __future__ import annotations

from collections import Counter

from repro.bejobs.catalog import WORDCOUNT
from repro.experiments.colocation import ColocationConfig
from repro.experiments.figures.figure17 import run_figure17


def main() -> None:
    data = run_figure17(
        be_spec=WORDCOUNT,
        duration_s=400.0,
        config=ColocationConfig(duration_s=400.0),
    )

    for pod in data.servpods:
        samples = data.samples[pod]
        print(f"=== {pod} machine  "
              f"(loadlimit={data.loadlimit[pod]:.2f}, "
              f"slacklimit={data.slacklimit[pod]:.3f}) ===")
        print(f"{'t':>5s} {'load':>5s} {'slack':>6s} {'BEinst':>6s} "
              f"{'BEcores':>7s} {'BE rate':>7s}  action")
        step = max(1, len(samples) // 20)
        for s in samples[::step]:
            marker = " <-- load over limit" if s.load > data.loadlimit[pod] else ""
            print(f"{s.t:5.0f} {s.load:5.2f} {s.slack:6.2f} {s.be_instances:6d} "
                  f"{s.be_cores:7d} {s.be_rate:7.2f}  {s.action}{marker}")
        actions = Counter(s.action for s in samples)
        print(f"actions over the day: {dict(actions)}")
        violations = sum(1 for s in samples if s.slack < 0)
        print(f"SLA violations: {violations}")
        print()

    print("Narrative (the paper's §5.4.1): BE state grows while slack is")
    print("ample; when the diurnal peak pushes the load over a machine's")
    print("loadlimit, its BE jobs are suspended (instances retained, progress")
    print("frozen); when the load recedes, growth resumes — and MySQL, with")
    print("its earlier loadlimit, spends more of the peak suspended than")
    print("Tomcat does.")


if __name__ == "__main__":
    main()
