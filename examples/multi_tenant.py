#!/usr/bin/env python3
"""Multi-tenant LC co-location — the paper's §7 future work, implemented.

Packs the E-commerce website and Redis onto four shared machines
(instead of six), co-locates Wordcount batch jobs on top, and shows that
the generalised per-machine controller — "the harshest resident decision
wins" — keeps both tenants' SLAs while batch work still makes progress.

Usage::

    python examples/multi_tenant.py
"""

from __future__ import annotations

from repro.bejobs.catalog import WORDCOUNT
from repro.experiments.colocation import ColocationConfig
from repro.experiments.multilc import MultiLcExperiment, pair_servpods
from repro.experiments.runner import get_rhythm
from repro.loadgen.clarknet import clarknet_production_load
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import ecommerce_service, redis_service


def main() -> None:
    ecom = ecommerce_service()
    redis = redis_service()

    placements = pair_servpods([ecom, redis])
    print("Packing two tenants onto shared machines:")
    for placement in placements:
        residents = " + ".join(f"{s}/{p}" for s, p in placement.residents)
        print(f"  {placement.machine}: {residents}")
    single_tenant = len(ecom.servpods) + len(redis.servpods)
    print(f"  -> {len(placements)} machines instead of {single_tenant}")
    print()

    controllers = {
        ecom.name: get_rhythm(ecom).controllers(),
        redis.name: get_rhythm(redis).controllers(),
    }
    duration = 400.0
    experiment = MultiLcExperiment(
        [ecom, redis],
        controllers,
        [WORDCOUNT],
        {
            ecom.name: clarknet_production_load(duration_s=duration, days=1, seed=5),
            redis.name: clarknet_production_load(duration_s=duration, days=1, seed=9),
        },
        RandomStreams(0),
        ColocationConfig(duration_s=duration),
    )
    result = experiment.run()

    print(f"A production day on {result.machine_count} shared machines:")
    for name, tenant in result.tenants.items():
        spec = ecom if name == ecom.name else redis
        print(
            f"  {name:11s} mean load={tenant.lc_load_mean:.2f}  "
            f"worst p99/SLA={tenant.worst_tail_ms / spec.sla_ms:.2f}  "
            f"SLA violations={tenant.sla_violations}"
        )
    print(f"  BE throughput per machine: {result.be_throughput:.3f}")
    print(f"  aggregate EMU: {result.emu:.3f}")
    print()
    print("Both tenants' SLAs survive on two fewer machines, with batch jobs")
    print("still finishing work — the direction the paper's §7 points at.")


if __name__ == "__main__":
    main()
