#!/usr/bin/env python3
"""Rhythm on a 30-microservice application (SNMS, §5.3.2, Figure 16).

SNMS — the DeathStarBench social network — is split into three Servpods
(frontend: 3 microservices, userservice: 14, mediaservice: 13). It ships
its own distributed tracer (jaeger), so Rhythm's request tracer is
bypassed and sojourn times come straight from application spans.

The script derives the per-Servpod thresholds and compares the solo run,
Heracles and Rhythm across a load sweep with an LSTM training job as the
best-effort workload.

Usage::

    python examples/microservices_snms.py
"""

from __future__ import annotations

from repro import ColocationConfig, compare_systems, snms_service
from repro.baselines.static import LcSoloPolicy
from repro.bejobs.catalog import LSTM
from repro.experiments.runner import get_rhythm, run_cell
from repro.loadgen.patterns import ConstantLoad


def main() -> None:
    service = snms_service()
    print(f"Service: {service.name} — {service.domain}")
    for pod in service.servpods:
        names = ", ".join(c.name for c in pod.components[:4])
        suffix = ", ..." if len(pod.components) > 4 else ""
        print(f"  {pod.name:13s} ({len(pod.components):2d} microservices: {names}{suffix})")
    print()

    # Profiling goes through the built-in jaeger tracer, not the
    # kernel-event tracer.
    rhythm = get_rhythm(service, profiling_mode="jaeger")
    contributions = rhythm.contributions().normalized()
    print("Normalized contributions (paper: user 0.565 > media 0.295 > frontend 0.14):")
    for pod, value in sorted(contributions.items(), key=lambda kv: -kv[1]):
        print(f"  {pod:13s} {value:.3f}")
    print()
    print("Thresholds:")
    for pod in service.servpod_names:
        print(f"  {pod:13s} loadlimit={rhythm.loadlimits()[pod]:.2f} "
              f"slacklimit={rhythm.slacklimits()[pod]:.3f}")
    print()

    config = ColocationConfig(duration_s=80.0)
    print(f"{'load':>5s} {'EMU solo':>9s} {'EMU +Heracles':>14s} {'EMU +Rhythm':>12s}")
    for load in (0.2, 0.4, 0.6, 0.85, 0.88):
        solo = run_cell(
            service, LcSoloPolicy().controllers(service), LSTM,
            ConstantLoad(load), config=config,
        )
        cmp = compare_systems(
            service, LSTM, load, config=config, profiling_mode="jaeger"
        )
        print(f"{load:5.2f} {solo.emu:9.3f} {cmp.heracles.emu:14.3f} "
              f"{cmp.rhythm.emu:12.3f}")
    print()
    print("Co-location lifts EMU well above the solo run at every load. At")
    print("and above 85% load Heracles disables everything, while Rhythm's")
    print("frontend and mediaservice machines (loadlimits 0.86-0.90) keep")
    print("running batch work; on the sensitive userservice machine Rhythm")
    print("deliberately trades some mid-load throughput for SLA headroom.")


if __name__ == "__main__":
    main()
