#!/usr/bin/env python3
"""Artifact check: validate the paper's key claims in one run.

Runs a condensed version of every headline experiment and prints a
PASS/FAIL line per claim — the quick sanity pass an artifact evaluator
would do before reproducing individual figures. Takes 2-4 minutes.

Usage::

    python scripts/artifact_check.py
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Tuple

import numpy as np


def check(claims: List[Tuple[str, Callable[[], bool]]]) -> int:
    failures = 0
    for label, predicate in claims:
        start = time.time()
        try:
            ok = predicate()
        except Exception as exc:  # pragma: no cover - surfaced to the user
            ok = False
            label = f"{label}  ({type(exc).__name__}: {exc})"
        status = "PASS" if ok else "FAIL"
        failures += 0 if ok else 1
        print(f"[{status}] {label}  ({time.time() - start:.1f}s)")
    return failures


def main() -> int:
    from repro.bejobs.catalog import STREAM_DRAM, STREAM_LLC, WORDCOUNT
    from repro.experiments.colocation import ColocationConfig
    from repro.experiments.figures.figure2 import increase_matrix, run_figure2
    from repro.experiments.figures.figure15 import run_figure15
    from repro.experiments.figures.figure18 import run_figure18
    from repro.experiments.runner import clear_rhythm_cache, compare_systems, get_rhythm
    from repro.workloads.catalog import ecommerce_service, redis_service
    from repro.workloads.microservices import snms_service

    clear_rhythm_cache()
    ecom = ecommerce_service()
    state = {}

    def claim_fig2() -> bool:
        rows = run_figure2(services=[redis_service()], samples=2500)
        redis = increase_matrix(rows, "Redis")
        ratio = redis["master"]["stream_llc(big)"] / max(
            redis["slave"]["stream_llc(big)"], 1e-9
        )
        print(f"       Master/Slave stream-llc(big) gap: {ratio:.0f}x (paper: >28x)")
        return ratio > 20

    def claim_loadlimits() -> bool:
        rhythm = get_rhythm(ecom)
        state["rhythm"] = rhythm
        limits = rhythm.loadlimits()
        print(f"       MySQL {limits['mysql']:.2f} (paper 0.76), "
              f"Tomcat {limits['tomcat']:.2f} (paper 0.87)")
        return abs(limits["mysql"] - 0.76) <= 0.05 and abs(limits["tomcat"] - 0.87) <= 0.05

    def claim_slacklimit_order() -> bool:
        limits = state["rhythm"].slacklimits()
        print(f"       mysql {limits['mysql']:.3f} > tomcat {limits['tomcat']:.3f} "
              f"> haproxy {limits['haproxy']:.3f}")
        return limits["mysql"] > limits["tomcat"] > limits["haproxy"]

    def claim_85_percent() -> bool:
        cmp = compare_systems(
            ecom, STREAM_DRAM, 0.85, config=ColocationConfig(duration_s=80.0)
        )
        print(f"       Heracles BE={cmp.heracles.be_throughput:.3f}, "
              f"Rhythm BE={cmp.rhythm.be_throughput:.3f}")
        return cmp.heracles.be_throughput == 0.0 and cmp.rhythm.be_throughput > 0.05

    def claim_production_safety() -> bool:
        rows = run_figure15(
            services=["E-commerce", "Redis"],
            be_specs=[STREAM_DRAM, STREAM_LLC, WORDCOUNT],
        )
        worst = max(r.worst_p99_over_sla for r in rows)
        violations = sum(r.rhythm_violations for r in rows)
        emu = float(np.mean([r.emu_improvement for r in rows]))
        print(f"       worst p99/SLA={worst:.3f} (paper 0.99), violations={violations}, "
              f"mean EMU gain {emu:+.1%}")
        return worst <= 1.0 and violations == 0 and emu > 0

    def claim_table2() -> bool:
        rows = run_figure18()
        derived = [r for r in rows if r.level == 1.0]
        detuned = [r for r in rows if r.varied == "loadlimit" and r.level > 1.0]
        ok_derived = all(r.sla_violations == 0 for r in derived)
        ok_detuned = sum(r.sla_violations for r in detuned) > 0
        print(f"       derived thresholds: {sum(r.sla_violations for r in derived)} "
              f"violations; over-raised loadlimit: "
              f"{sum(r.sla_violations for r in detuned)} violations")
        return ok_derived and ok_detuned

    def claim_snms() -> bool:
        rhythm = get_rhythm(snms_service(), profiling_mode="jaeger")
        n = rhythm.contributions().normalized()
        print(f"       user {n['userservice']:.2f} > media {n['mediaservice']:.2f} "
              f"> frontend {n['frontend']:.2f}")
        return n["userservice"] > n["mediaservice"] > n["frontend"]

    failures = check([
        ("Fig. 2a: Redis Master >> Slave under LLC pressure", claim_fig2),
        ("Fig. 8: loadlimits MySQL~0.76, Tomcat~0.87", claim_loadlimits),
        ("Alg. 1: slacklimit ordering mysql > tomcat > haproxy", claim_slacklimit_order),
        ("Figs. 9-11: Heracles zero at 85% load, Rhythm co-locates", claim_85_percent),
        ("Fig. 15d: production SLA never violated, EMU improves", claim_production_safety),
        ("Tab. 2: derived thresholds safe, over-raised loadlimit unsafe", claim_table2),
        ("§5.3.2: SNMS contributions user > media > frontend", claim_snms),
    ])
    print()
    if failures:
        print(f"{failures} claim(s) FAILED")
        return 1
    print("All claims reproduced.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
