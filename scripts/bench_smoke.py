#!/usr/bin/env python
"""Fast regression gate for the parallel grid engine and result cache.

Runs, in order:

1. a tiny parallel grid (1 service, 2 BE jobs, 2 loads, 20 simulated
   seconds per cell) twice — inline and on a 2-worker pool — and asserts
   the results are bit-identical, then
2. the profiling pipeline twice — the serial ``Rhythm`` path and the
   fanned-out pool path — asserting identical artifacts, plus a
   cold/warm profiling cache round trip that must execute zero
   simulations when warm, then
3. the same grid cold-then-warm against a throwaway disk cache and
   asserts the warm run hits every cell (zero recomputation) with
   bit-identical results, then
4. the chaos smoke: the tiny grid again under an executor crash storm
   (bit-identical to the fault-free inline run, retry counters matching
   the injected crashes, zero unhandled exceptions) and a tiny
   cluster-layer fault storm driven end to end, then
5. the kernel smoke: a small co-location cell (healthy and faulted) and
   a short queueing run under the scalar and batched simulation kernels,
   asserting bit-identical results and RNG states, then
6. the fleet smoke: a small mixed fleet through the fleet SoA kernel,
   asserting bit-identity with the sequential scalar reference and
   shard-count invariance, then
7. the fleet cache smoke: the same fleet cold-then-warm against a
   throwaway disk cache, asserting the warm run executes zero
   simulations, reproduces the cold ``FleetResult.digest``
   bit-identically, and still hits every entry after resharding, then
8. the bake-off smoke: a small three-member controller bake-off under
   a fault schedule, run once as independent reference runs and once
   through the shared-physics single pass, asserting bit-identical
   digests, plus a cold/warm bake-off cache round trip that must
   execute zero shared passes when warm, then
9. the storm smoke: a correlated fault storm (seeded rack/AZ/ToR
   domain events expanded over a small fleet) through the fleet SoA
   kernel, asserting bit-identity with the sequential scalar
   reference, plus a cold/warm storm round trip that must execute
   zero simulations when warm, then
10. the tier-1 test suite (``pytest -x -q`` over ``tests/``).

Exit code is non-zero on any failure, so CI can gate pool-runner and
cache regressions without paying for the full figure grids. Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--skip-tests]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def smoke_parallel_grid() -> None:
    """The tiny serial-vs-pool identity check."""
    from repro.bejobs.catalog import evaluation_be_jobs
    from repro.experiments.colocation import ColocationConfig
    from repro.parallel.grid import (
        GridCell,
        comparison_fingerprint,
        profile_services,
        run_comparison_grid,
    )
    from repro.workloads.catalog import LC_CATALOG

    spec = LC_CATALOG["Redis"]()
    cells = [
        GridCell(spec, be, load, seed=0)
        for be in evaluation_be_jobs()[:2]
        for load in (0.25, 0.65)
    ]
    config = ColocationConfig(duration_s=20.0)
    # The analytic slacklimit fixed point skips the expensive SLA probe;
    # the pool mechanics under test are identical either way.
    artifacts = profile_services(cells, probe_slacklimits=False)
    t0 = time.perf_counter()
    serial = run_comparison_grid(
        cells, config=config, workers=1, artifacts=artifacts
    )
    pooled = run_comparison_grid(
        cells, config=config, workers=2, artifacts=artifacts
    )
    elapsed = time.perf_counter() - t0
    if [comparison_fingerprint(r) for r in serial] != [
        comparison_fingerprint(r) for r in pooled
    ]:
        raise AssertionError("pool results diverged from the serial run")
    events = sum(r.rhythm.events_fired + r.heracles.events_fired for r in serial)
    print(
        f"smoke grid OK: {2 * len(cells)} simulations x2 paths, "
        f"{events} events, bit-identical, {elapsed:.1f}s"
    )


def smoke_profiling() -> None:
    """Profiling identity gate plus the cold/warm profiling round trip."""
    import shutil
    import tempfile

    from repro.cache import CacheStore
    from repro.experiments.runner import clear_rhythm_cache
    from repro.parallel.artifact import artifact_for
    from repro.parallel.profile import (
        ProfileStats,
        clear_profile_memo,
        profile_service_parallel,
    )
    from repro.workloads.catalog import LC_CATALOG

    spec = LC_CATALOG["Redis"]()
    clear_rhythm_cache()
    clear_profile_memo()
    t0 = time.perf_counter()
    serial = artifact_for(spec, seed=0, probe_slacklimits=False)
    clear_profile_memo()
    pooled = profile_service_parallel(
        spec, seed=0, probe_slacklimits=False, workers=2
    )
    identity_s = time.perf_counter() - t0
    if pooled != serial:
        raise AssertionError("pooled profiling diverged from the serial pipeline")

    cache_dir = tempfile.mkdtemp(prefix="rhythm-smoke-profile-")
    try:
        store = CacheStore(cache_dir)
        clear_profile_memo()
        cold_stats = ProfileStats()
        t0 = time.perf_counter()
        cold = profile_service_parallel(
            spec, seed=0, probe_slacklimits=False, workers=2,
            cache=store, stats=cold_stats,
        )
        cold_s = time.perf_counter() - t0
        clear_profile_memo()  # force everything back from disk
        warm_stats = ProfileStats()
        t0 = time.perf_counter()
        warm = profile_service_parallel(
            spec, seed=0, probe_slacklimits=False, workers=2,
            cache=store, stats=warm_stats,
        )
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if warm_stats.sweep_executed or warm_stats.slack_executed:
        raise AssertionError(
            f"warm profiling re-ran simulations: "
            f"{warm_stats.sweep_executed} sweep, "
            f"{warm_stats.slack_executed} slacklimit"
        )
    if warm != cold or warm != serial:
        raise AssertionError("warm profiling artifact diverged")
    print(
        f"smoke profiling OK: serial==pooled ({identity_s:.1f}s), "
        f"cold {cold_s:.1f}s -> warm {warm_s:.3f}s, zero simulations warm"
    )


def smoke_cache() -> None:
    """The tiny cold-vs-warm incremental re-execution check."""
    import shutil
    import tempfile

    from repro.bejobs.catalog import evaluation_be_jobs
    from repro.cache import CacheStore
    from repro.experiments.colocation import ColocationConfig
    from repro.experiments.runner import clear_rhythm_cache
    from repro.parallel.grid import (
        GridCacheStats,
        GridCell,
        comparison_fingerprint,
        run_comparison_grid,
    )
    from repro.workloads.catalog import LC_CATALOG

    spec = LC_CATALOG["Redis"]()
    cells = [
        GridCell(spec, be, load, seed=0)
        for be in evaluation_be_jobs()[:2]
        for load in (0.25, 0.65)
    ]
    config = ColocationConfig(duration_s=20.0)
    cache_dir = tempfile.mkdtemp(prefix="rhythm-smoke-cache-")
    try:
        store = CacheStore(cache_dir)
        clear_rhythm_cache()
        cold_stats = GridCacheStats()
        t0 = time.perf_counter()
        cold = run_comparison_grid(
            cells, config=config, workers=1, cache=store, cache_stats=cold_stats
        )
        cold_s = time.perf_counter() - t0
        clear_rhythm_cache()  # force the artifact to come back from disk
        warm_stats = GridCacheStats()
        t0 = time.perf_counter()
        warm = run_comparison_grid(
            cells, config=config, workers=1, cache=store, cache_stats=warm_stats
        )
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if warm_stats.hits != len(cells) or warm_stats.misses or warm_stats.skipped:
        raise AssertionError(
            f"warm run recomputed cells: {warm_stats.hits} hits, "
            f"{warm_stats.misses} misses, {warm_stats.skipped} skipped"
        )
    if [comparison_fingerprint(r) for r in cold] != [
        comparison_fingerprint(r) for r in warm
    ]:
        raise AssertionError("warm cache results diverged from the cold run")
    print(
        f"smoke cache OK: {len(cells)} cells, cold {cold_s:.1f}s -> "
        f"warm {warm_s:.3f}s, all hits, bit-identical"
    )


def smoke_chaos() -> None:
    """The fault-injection gate: chaos must not change outputs.

    Re-runs the tiny grid with every pooled task crashing on its first
    attempt more often than not, asserts the hardened pool's results are
    bit-identical to the fault-free inline run with the retry counters
    matching the injected crashes exactly, then drives one tiny
    cluster-layer fault storm end to end (Rhythm vs Heracles) to prove
    the chaos CLI path completes without unhandled exceptions.
    """
    from repro.bejobs.catalog import BE_CATALOG, evaluation_be_jobs
    from repro.experiments.colocation import ColocationConfig
    from repro.experiments.faultstorm import run_fault_storm
    from repro.experiments.runner import clear_rhythm_cache
    from repro.faults import ExecutorFaultPlan, executor_chaos
    from repro.parallel.artifact import artifact_for
    from repro.parallel.grid import (
        GridCell,
        comparison_fingerprint,
        run_comparison_grid,
    )
    from repro.parallel.pool import pool_stats, reset_pool_stats
    from repro.workloads.catalog import LC_CATALOG

    spec = LC_CATALOG["Redis"]()
    cells = [
        GridCell(spec, be, load, seed=0)
        for be in evaluation_be_jobs()[:2]
        for load in (0.25, 0.65)
    ]
    config = ColocationConfig(duration_s=20.0)
    clear_rhythm_cache()  # earlier smokes memoized these same cells
    artifacts = {spec.name: artifact_for(spec, seed=0, probe_slacklimits=False)}
    serial = run_comparison_grid(cells, config=config, workers=1, artifacts=artifacts)
    reset_pool_stats()
    t0 = time.perf_counter()
    try:
        with executor_chaos(ExecutorFaultPlan(seed=0, crash_rate=0.6)):
            chaotic = run_comparison_grid(
                cells, config=config, workers=2, artifacts=artifacts
            )
        stats = pool_stats()
    finally:
        reset_pool_stats()
    elapsed = time.perf_counter() - t0
    if [comparison_fingerprint(r) for r in serial] != [
        comparison_fingerprint(r) for r in chaotic
    ]:
        raise AssertionError("crash-storm grid diverged from the fault-free run")
    # Every injected crash fails the first attempt once and is retried
    # once; a clean second attempt means no inline fallbacks were needed.
    if stats.task_failures == 0:
        raise AssertionError("crash storm injected no faults (vacuous gate)")
    if stats.retries != stats.task_failures or stats.inline_fallbacks:
        raise AssertionError(
            f"retry counters diverged from injected crashes: "
            f"{stats.task_failures} failures, {stats.retries} retries, "
            f"{stats.inline_fallbacks} inline fallbacks"
        )

    t0 = time.perf_counter()
    storm = run_fault_storm(
        spec,
        BE_CATALOG["stream-dram-small"],
        load=0.5,
        duration_s=20.0,
        seed=0,
        storm_seed=1,
        faults_per_minute=9.0,
    )
    storm_s = time.perf_counter() - t0
    if storm.faults_injected == 0:
        raise AssertionError("fault storm generated an empty schedule")
    print(
        f"smoke chaos OK: {stats.task_failures} injected crashes all retried "
        f"clean, bit-identical ({elapsed:.1f}s); "
        f"{storm.faults_injected}-fault storm ran both systems ({storm_s:.1f}s)"
    )


def smoke_kernel() -> None:
    """The scalar-vs-batched kernel identity gate.

    A small co-location cell (healthy and under a fault schedule) and a
    short queueing run must produce bit-identical results — fingerprints
    plus the final state of every RNG stream — under both kernels.
    """
    from repro.experiments.runner import kernel_identity_probe
    from repro.sim.rng import RandomStreams
    from repro.workloads.queueing import QueueingComponent

    t0 = time.perf_counter()
    for pattern, faults in (("constant", False), ("step", True)):
        scalar = kernel_identity_probe(
            "scalar", seed=3, pattern_name=pattern, with_faults=faults
        )
        batched = kernel_identity_probe(
            "batched", seed=3, pattern_name=pattern, with_faults=faults
        )
        if scalar != batched:
            raise AssertionError(
                f"batched kernel diverged from scalar "
                f"(pattern={pattern}, faults={faults})"
            )

    runs = {}
    for kernel in ("scalar", "batched"):
        component = QueueingComponent(2.0, 0.3, workers=8)
        streams = RandomStreams(11)
        stats = component.simulate(
            0.7 * component.capacity_qps, 20.0, streams, kernel=kernel
        )
        runs[kernel] = (
            stats,
            tuple(
                (name, repr(streams._streams[name].bit_generator.state))
                for name in sorted(streams._streams)
            ),
        )
    if runs["scalar"] != runs["batched"]:
        raise AssertionError("batched queueing run diverged from scalar")
    elapsed = time.perf_counter() - t0
    print(
        f"smoke kernel OK: colocation (healthy + faulted) and "
        f"{runs['scalar'][0].events}-event queueing run bit-identical "
        f"across kernels ({elapsed:.1f}s)"
    )


def smoke_fleet() -> None:
    """The fleet identity gate.

    A small mixed fleet (one fault-injected instance) through the fleet
    SoA kernel must match the sequential scalar reference digest, and a
    2-shard split of the same fleet must match the 1-shard run.
    """
    from repro.experiments.fleet import fleet_identity_probe

    t0 = time.perf_counter()
    case = {"n_instances": 4, "duration_s": 40.0, "seed": 5, "with_faults": True}
    reference = fleet_identity_probe("reference", **case)
    if fleet_identity_probe("fleet", **case) != reference:
        raise AssertionError("fleet kernel diverged from the scalar reference")
    if fleet_identity_probe("fleet", shards=2, **case) != reference:
        raise AssertionError("fleet results changed with the shard count")
    elapsed = time.perf_counter() - t0
    print(
        f"smoke fleet OK: 4-instance mixed fleet bit-identical to the "
        f"sequential scalar reference, shard-count invariant ({elapsed:.1f}s)"
    )


def smoke_fleet_cache() -> None:
    """The fleet cold/warm cache round trip.

    A small fleet cold-then-warm against a throwaway disk cache: the
    warm run must execute zero simulations and reproduce the cold run's
    ``FleetResult.digest`` bit-identically, and a resharded re-run of
    the same fleet must still hit every per-zone entry (the shard count
    is not a cache-key coordinate).
    """
    import dataclasses
    import shutil
    import tempfile

    from repro.cache import CacheStore
    from repro.experiments.fleet import FleetConfig, FleetExperiment, alibaba_fleet

    config = FleetConfig(duration_s=30.0, shards=2, workers=1, zone_size=2)
    fleet = alibaba_fleet(
        8, policy="heracles", duration_s=30.0, seed=5, config=config
    )
    cache_dir = tempfile.mkdtemp(prefix="rhythm-smoke-fleet-cache-")
    try:
        store = CacheStore(cache_dir)
        t0 = time.perf_counter()
        cold = fleet.run(cache=store)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = fleet.run(cache=store)
        warm_s = time.perf_counter() - t0
        resharded = FleetExperiment(
            fleet.instances, dataclasses.replace(config, shards=1)
        ).run(cache=store)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if warm.cache.simulated != 0:
        raise AssertionError(
            f"warm fleet re-run executed simulations: "
            f"{warm.cache.misses} misses, {warm.cache.skipped} skipped"
        )
    if warm.digest != cold.digest:
        raise AssertionError("warm fleet digest diverged from the cold run")
    if resharded.cache.simulated != 0 or resharded.digest != cold.digest:
        raise AssertionError(
            "resharded fleet re-run missed the per-zone cache entries"
        )
    print(
        f"smoke fleet cache OK: {cold.cache.total} zones, "
        f"cold {cold_s:.1f}s -> warm {warm_s:.3f}s, zero simulations "
        f"warm, shard-count invariant, bit-identical digest"
    )


def smoke_bakeoff() -> None:
    """The controller bake-off identity gate plus its cache round trip.

    A small three-member bake-off under a fault schedule must reproduce
    the independent reference runs' digests bit-identically through the
    shared-physics single pass, and a warm re-run against a throwaway
    disk cache must execute zero shared passes while returning the cold
    run's digest.
    """
    import shutil
    import tempfile

    from repro.cache import CacheStore
    from repro.experiments.bakeoff import (
        BakeoffConfig,
        bakeoff_identity_probe,
        bakeoff_scenario_grid,
        heracles_member,
        interference_member,
        predictive_member,
        run_bakeoff,
    )

    t0 = time.perf_counter()
    for with_faults in (False, True):
        reference = bakeoff_identity_probe(
            "reference", duration_s=40.0, with_faults=with_faults
        )
        shared = bakeoff_identity_probe(
            "bakeoff", duration_s=40.0, with_faults=with_faults
        )
        if shared != reference:
            raise AssertionError(
                f"shared bake-off pass diverged from the independent "
                f"reference runs (with_faults={with_faults})"
            )
    identity_s = time.perf_counter() - t0

    members = [
        heracles_member("Redis"),
        interference_member(),
        predictive_member(),
    ]
    scenarios = bakeoff_scenario_grid(
        loads=(0.35,), duration_s=40.0, seed=3
    )
    config = BakeoffConfig(duration_s=40.0)
    cache_dir = tempfile.mkdtemp(prefix="rhythm-smoke-bakeoff-")
    try:
        store = CacheStore(cache_dir)
        t0 = time.perf_counter()
        cold = run_bakeoff(scenarios, members, config=config, cache=store)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_bakeoff(scenarios, members, config=config, cache=store)
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if warm.passes != 0:
        raise AssertionError(
            f"warm bake-off re-simulated: {warm.passes} shared passes, "
            f"{warm.cache.misses} cache misses"
        )
    if warm.digest != cold.digest:
        raise AssertionError("warm bake-off digest diverged from the cold run")
    print(
        f"smoke bakeoff OK: 3-member roster bit-identical to independent "
        f"runs, healthy + faulted ({identity_s:.1f}s); cold {cold_s:.1f}s "
        f"-> warm {warm_s:.3f}s, zero shared passes warm"
    )


def smoke_storm() -> None:
    """The correlated-storm identity gate plus its cache round trip.

    A small stormed fleet (seeded domain events expanded into
    per-instance fault schedules) through the fleet SoA kernel must
    match the sequential scalar reference digest, and a warm re-run of
    the identical storm against a throwaway disk cache must execute
    zero simulations while reproducing the cold digest.
    """
    import shutil
    import tempfile

    from repro.cache import CacheStore
    from repro.experiments.fleet import FleetConfig, alibaba_fleet
    from repro.experiments.scenarios import storm_fleet, storm_identity_probe
    from repro.faults.topology import CorrelatedFaultSchedule, FleetTopology

    t0 = time.perf_counter()
    case = {"n_instances": 4, "duration_s": 40.0, "seed": 5, "storm_seed": 7}
    reference = storm_identity_probe("reference", **case)
    if storm_identity_probe("fleet", **case) != reference:
        raise AssertionError("stormed fleet diverged from the scalar reference")
    if storm_identity_probe("fleet", shards=2, **case) != reference:
        raise AssertionError("storm results changed with the shard count")
    identity_s = time.perf_counter() - t0

    config = FleetConfig(duration_s=40.0, shards=2, workers=1, zone_size=2)
    fleet = alibaba_fleet(
        8, policy="heracles", duration_s=40.0, seed=5, config=config
    )
    topology = FleetTopology.generate(
        7, n_instances=len(fleet.instances), zone_size=2
    )
    storm = CorrelatedFaultSchedule.generate(
        7, topology, 40.0, events_per_minute=2.0
    )
    stormed = storm_fleet(fleet, storm)
    cache_dir = tempfile.mkdtemp(prefix="rhythm-smoke-storm-")
    try:
        store = CacheStore(cache_dir)
        t0 = time.perf_counter()
        cold = stormed.run(cache=store)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = stormed.run(cache=store)
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if warm.cache.simulated != 0:
        raise AssertionError(
            f"warm storm re-run executed simulations: "
            f"{warm.cache.misses} misses, {warm.cache.skipped} skipped"
        )
    if warm.digest != cold.digest:
        raise AssertionError("warm storm digest diverged from the cold run")
    print(
        f"smoke storm OK: {len(storm)}-event storm bit-identical to the "
        f"scalar reference, shard-count invariant ({identity_s:.1f}s); "
        f"cold {cold_s:.1f}s -> warm {warm_s:.3f}s, zero simulations warm"
    )


def run_tier1() -> int:
    """The repo's tier-1 suite, exactly as the roadmap invokes it."""
    env = dict(**__import__("os").environ)
    env["PYTHONPATH"] = (
        f"{SRC}:{env['PYTHONPATH']}" if env.get("PYTHONPATH") else str(SRC)
    )
    return subprocess.call(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO_ROOT, env=env
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-tests", action="store_true",
        help="only run the parallel-grid smoke, not the tier-1 suite",
    )
    args = parser.parse_args()
    sys.path.insert(0, str(SRC))
    smoke_parallel_grid()
    smoke_profiling()
    smoke_cache()
    smoke_chaos()
    smoke_kernel()
    smoke_fleet()
    smoke_fleet_cache()
    smoke_bakeoff()
    smoke_storm()
    if args.skip_tests:
        return 0
    return run_tier1()


if __name__ == "__main__":
    raise SystemExit(main())
