#!/usr/bin/env bash
# The repo's CI gate: tier-1 tests plus the perf smoke gate.
#
# Usage (from the repo root):
#
#   bash scripts/ci_check.sh
#
# Runs, in order:
#   1. the tier-1 test suite (PYTHONPATH=src pytest -x -q; slow-marked
#      chaos/spawn tests are excluded by pyproject addopts), then
#   2. the perf + chaos smoke gate (parallel-grid bit-identity,
#      profiling identity + cold/warm profiling round trip, the
#      cold/warm grid cache round trip, and the chaos smoke: a crash
#      storm that must leave results bit-identical with retry counters
#      matching the injected crashes, plus a tiny cluster fault storm,
#      the scalar-vs-batched kernel identity smoke, the fleet
#      smoke: a mixed fleet bit-identical to the sequential scalar
#      reference and invariant to the shard count, and the fleet cache
#      smoke: a warm fleet re-run must execute zero simulations and
#      reproduce the cold run's FleetResult.digest, and the bake-off
#      smoke: a shared-physics multi-controller pass bit-identical to
#      independent reference runs, healthy and faulted, with a warm
#      cache re-run executing zero shared passes, and the storm smoke:
#      a correlated fault storm bit-identical to the scalar reference
#      with a warm re-run executing zero simulations)
#      from scripts/bench_smoke.py, then
#   3. (opt-in, RHYTHM_BENCH_GATE=1) the full kernel benchmark with a 5x
#      aggregate-speedup gate (benchmarks/bench_kernel.py --gate 5.0),
#      the fleet benchmark with its 10x colocation-path gate
#      (benchmarks/bench_fleet.py --gate 10.0), the bake-off
#      benchmark with its 2x aggregate-speedup gate
#      (benchmarks/bench_bakeoff.py --gate 2.0), and the storm
#      benchmark with its 10x warm-cache gate
#      (benchmarks/bench_storm.py --gate 10.0).
#
# Any failure aborts with a non-zero exit code.

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== perf smoke gate =="
python scripts/bench_smoke.py --skip-tests

if [[ "${RHYTHM_BENCH_GATE:-0}" == "1" ]]; then
  echo
  echo "== kernel benchmark gate (RHYTHM_BENCH_GATE=1) =="
  python benchmarks/bench_kernel.py --gate 5.0
  echo
  echo "== fleet benchmark gate (RHYTHM_BENCH_GATE=1) =="
  python benchmarks/bench_fleet.py --gate 10.0
  echo
  echo "== bake-off benchmark gate (RHYTHM_BENCH_GATE=1) =="
  python benchmarks/bench_bakeoff.py --gate 2.0
  echo
  echo "== storm benchmark gate (RHYTHM_BENCH_GATE=1) =="
  python benchmarks/bench_storm.py --gate 10.0
fi

echo
echo "ci_check OK"
