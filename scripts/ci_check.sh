#!/usr/bin/env bash
# The repo's CI gate: tier-1 tests plus the perf smoke gate.
#
# Usage (from the repo root):
#
#   bash scripts/ci_check.sh
#
# Runs, in order:
#   1. the tier-1 test suite (PYTHONPATH=src pytest -x -q), then
#   2. the perf smoke gate (parallel-grid bit-identity, profiling
#      identity + cold/warm profiling round trip, and the cold/warm
#      grid cache round trip) from scripts/bench_smoke.py.
#
# Any failure aborts with a non-zero exit code.

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== perf smoke gate =="
python scripts/bench_smoke.py --skip-tests

echo
echo "ci_check OK"
